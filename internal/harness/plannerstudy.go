package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/dmv"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/pop"
	"repro/internal/schema"
	"repro/internal/tpch"
	"repro/internal/types"
)

// This file is the planner shootout (BENCH_planners.json): every built-in
// pop.Strategy runs the TPC-H query set, the DMV correlation workload and a
// new adversarial skew substrate (zipfian join keys + correlated predicates),
// all through a per-strategy plan cache. The study reports, per strategy,
// planning wall time and candidate counts on the TPC-H join queries plus
// execution work, re-optimization counts and cache/guard verdicts per
// workload — the data behind "which planner when" (DESIGN.md §13).

// skewNumCats is the category-domain size of the skew substrate; the
// correlated predicate pair (d_cat = c AND d_pop <= c) and the key-implied
// category make the independence assumption mis-estimate scans and joins by
// up to about this factor.
const skewNumCats = 16

// skewConfig sizes the adversarial skew substrate.
type skewConfig struct {
	dims  int
	facts int
	seed  int64
}

// skewSizes returns the substrate size for the study mode.
func skewSizes(smoke bool) skewConfig {
	if smoke {
		// Large enough that plan costs clear the checkpoint floor
		// (Policy.MinPlanCost), so the smoke run exercises re-optimization.
		return skewConfig{dims: 1200, facts: 12000, seed: 23}
	}
	return skewConfig{dims: 4000, facts: 40000, seed: 23}
}

// loadSkew builds the adversarial skew substrate: a dimension table ZDIM, a
// fact table ZFACT whose join key is drawn from a zipfian distribution over
// the dimension ids (low ids are hot) and whose category is correlated with
// the key (f_cat = f_key mod skewNumCats 90% of the time), and a tiny
// category dimension ZCAT the queries route the fact side through.
// Histograms see a mild key skew and independent-looking category columns;
// the actual mass of the three-way join varies by orders of magnitude with
// the binding — exactly the estimate-vs-actual gap adaptive strategies
// differ on, and it crosses a checkpointable intermediate edge because the
// mis-estimated two-way join feeds the third join rather than the root.
func loadSkew(cat *catalog.Catalog, cfg skewConfig) error {
	rng := rand.New(rand.NewSource(cfg.seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(cfg.dims-1))

	zdim, err := cat.CreateTable("zdim", schema.New(
		schema.Column{Name: "d_id", Type: types.KindInt},
		schema.Column{Name: "d_cat", Type: types.KindInt},
		schema.Column{Name: "d_pop", Type: types.KindFloat},
	))
	if err != nil {
		return err
	}
	for i := 0; i < cfg.dims; i++ {
		zdim.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % skewNumCats)),
			// d_pop tracks the category: equi-depth histograms on d_cat and
			// d_pop are each accurate alone, but their product is wildly off
			// for the pair (d_cat = c AND d_pop <= c).
			types.NewFloat(float64(i%skewNumCats) + rng.Float64() - 0.5),
		})
	}

	zfact, err := cat.CreateTable("zfact", schema.New(
		schema.Column{Name: "f_id", Type: types.KindInt},
		schema.Column{Name: "f_key", Type: types.KindInt},
		schema.Column{Name: "f_cat", Type: types.KindInt},
		schema.Column{Name: "f_val", Type: types.KindFloat},
	))
	if err != nil {
		return err
	}
	for i := 0; i < cfg.facts; i++ {
		key := int64(zipf.Uint64())
		fcat := key % skewNumCats
		if rng.Float64() >= 0.9 {
			fcat = int64(rng.Intn(skewNumCats)) // the 10% that break the correlation
		}
		zfact.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewInt(key),
			types.NewInt(fcat),
			types.NewFloat(rng.Float64()),
		})
	}

	zcat, err := cat.CreateTable("zcat", schema.New(
		schema.Column{Name: "c_id", Type: types.KindInt},
		schema.Column{Name: "c_name", Type: types.KindString},
		schema.Column{Name: "c_rank", Type: types.KindInt},
	))
	if err != nil {
		return err
	}
	for i := 0; i < skewNumCats; i++ {
		zcat.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("CAT_%02d", i)),
			types.NewInt(int64(i % 4)),
		})
	}

	for _, ix := range [][3]string{
		{"zdim_id", "zdim", "d_id"},
		{"zfact_key", "zfact", "f_key"},
		{"zfact_cat", "zfact", "f_cat"},
		{"zcat_id", "zcat", "c_id"},
	} {
		if _, err := cat.CreateBTreeIndex(ix[0], ix[1], ix[2]); err != nil {
			return err
		}
	}
	return cat.AnalyzeAll()
}

// skewCorrQuery is the correlated-predicate probe: COUNT(*) over the
// three-way join zdim ⋈ zfact ⋈ zcat restricted by the correlated pair
// d_cat = ?0 AND d_pop <= ?1 (bound to the same category value). The pair is
// near-redundant — d_pop tracks d_cat — so the independence assumption
// mis-estimates the zdim scan by up to ~8× in either direction depending on
// the binding, and that scan is exactly where POP checkpoints (it is the
// materialized outer of the index join into zfact). The zipfian key then
// makes the downstream join mass per category wildly uneven, and the
// unrestricted zcat dimension hangs off f_cat so the mis-estimated
// intermediate crosses a second join edge instead of hiding at the root.
func skewCorrQuery(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("zdim", "d")
	b.AddTable("zfact", "f")
	b.AddTable("zcat", "c")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("d", "d_id"), R: b.Col("f", "f_key")})
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("f", "f_cat"), R: b.Col("c", "c_id")})
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("d", "d_cat"), R: b.Param(0)})
	b.Where(&expr.Cmp{Op: expr.LE, L: b.Col("d", "d_pop"), R: b.Param(1)})
	b.SelectAgg(logical.AggCount, nil, "n")
	return b.Build()
}

// skewHotQuery is the hot-key range probe: total fact value per category
// name for join keys up to a threshold. Small thresholds cover the zipf
// head — a tiny key range carrying a huge share of the fact rows — so the
// intermediate cardinality swings by orders of magnitude with the binding,
// exercising the plan cache's validity guards across the sweep.
func skewHotQuery(cat *catalog.Catalog) (*logical.Query, error) {
	b := logical.NewBuilder(cat)
	b.AddTable("zdim", "d")
	b.AddTable("zfact", "f")
	b.AddTable("zcat", "c")
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("d", "d_id"), R: b.Col("f", "f_key")})
	b.Where(&expr.Cmp{Op: expr.EQ, L: b.Col("f", "f_cat"), R: b.Col("c", "c_id")})
	b.Where(&expr.Cmp{Op: expr.LE, L: b.Col("f", "f_key"), R: b.Param(0)})
	b.SelectCol("c", "c_name")
	b.SelectAgg(logical.AggSum, b.Col("f", "f_val"), "v")
	b.GroupBy(b.Col("c", "c_name"))
	return b.Build()
}

// PlannerWorkload aggregates one strategy's runs over one workload.
type PlannerWorkload struct {
	Workload      string  `json:"workload"`
	Executions    int     `json:"executions"`
	Rows          int     `json:"rows"`
	ExecWork      float64 `json:"exec_work"`
	Reopts        int     `json:"reopts"`
	CacheHits     int     `json:"cache_hits"`
	CacheMisses   int     `json:"cache_misses"`
	Invalidations int     `json:"invalidations"`
	GuardRejects  int64   `json:"guard_rejects"`
	WallNS        int64   `json:"wall_ns"`
}

// PlannerStrategyResult is one strategy's row of the shootout: planning-time
// measurements over the TPC-H join queries plus per-workload execution
// aggregates.
type PlannerStrategyResult struct {
	Strategy       pop.StrategyName  `json:"strategy"`
	Description    string            `json:"description"`
	PlanNS         int64             `json:"plan_ns"`
	PlanRounds     int               `json:"plan_rounds"`
	PlanQueries    int               `json:"plan_queries"`
	PlanCandidates int               `json:"plan_candidates"`
	Workloads      []PlannerWorkload `json:"workloads"`
}

// PlannerResult is the shootout output (BENCH_planners.json).
type PlannerResult struct {
	Smoke bool `json:"smoke"`
	// JoinQueries lists the TPC-H queries (≥ 4 tables) the planning-time
	// measurement runs over.
	JoinQueries []string                `json:"tpch_join_queries"`
	Strategies  []PlannerStrategyResult `json:"strategies"`
	// PlanTimeRatioGreedyDP is greedy-pop planning time over dp-pop planning
	// time on the join queries — the headline "greedy plans in a fraction of
	// DP time" number.
	PlanTimeRatioGreedyDP float64 `json:"greedy_vs_dp_plan_time_ratio"`
	// PlanCandRatioGreedyDP is the same ratio in costed candidates — the
	// wall-clock-independent form the regression test pins.
	PlanCandRatioGreedyDP float64 `json:"greedy_vs_dp_candidate_ratio"`
}

// plannerExec is one statement execution of the shootout's workload script.
type plannerExec struct {
	q      *logical.Query
	params []types.Datum
}

// plannerWorkloads builds the three workload scripts. Each script is a flat
// execution list; two passes over each statement mix cold (miss) and warm
// (hit or guard-reject) cache behavior.
func plannerWorkloads(tpchCat, dmvCat, skewCat *catalog.Catalog, smoke bool) (map[string][]plannerExec, error) {
	out := make(map[string][]plannerExec)

	// TPC-H: the named query set plus the parameterized Q10 sweep.
	tq, err := tpch.Queries(tpchCat)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(tq))
	for n := range tq {
		names = append(names, n)
	}
	sort.Strings(names)
	if smoke {
		names = []string{"Q3", "Q5", "Q10"}
	}
	var tpchScript []plannerExec
	for _, n := range names {
		tpchScript = append(tpchScript, plannerExec{q: tq[n]})
	}
	q10, err := tpch.Q10Param(tpchCat)
	if err != nil {
		return nil, err
	}
	bindings := planCacheBindings()
	if smoke {
		bindings = bindings[:4]
	}
	for _, qty := range bindings {
		tpchScript = append(tpchScript, plannerExec{q: q10, params: []types.Datum{types.NewFloat(qty)}})
	}
	out["tpch"] = doublePass(tpchScript)

	// DMV: the correlated decision-support workload.
	dq, err := dmv.Queries(dmvCat)
	if err != nil {
		return nil, err
	}
	if smoke && len(dq) > 6 {
		dq = dq[:6]
	}
	var dmvScript []plannerExec
	for _, qi := range dq {
		dmvScript = append(dmvScript, plannerExec{q: qi.Query})
	}
	out["dmv"] = doublePass(dmvScript)

	// Skew: the correlated-category sweep and the hot-key range sweep.
	corr, err := skewCorrQuery(skewCat)
	if err != nil {
		return nil, err
	}
	hot, err := skewHotQuery(skewCat)
	if err != nil {
		return nil, err
	}
	cats := skewNumCats
	thresholds := []int64{1, 4, 16, 64, 256, 1024, 4096}
	if smoke {
		cats = 4
		thresholds = []int64{1, 16, 256}
	}
	var skewScript []plannerExec
	for c := 0; c < cats; c++ {
		skewScript = append(skewScript, plannerExec{q: corr,
			params: []types.Datum{types.NewInt(int64(c)), types.NewFloat(float64(c))}})
	}
	maxKey := int64(skewSizes(smoke).dims)
	for _, th := range thresholds {
		if th > maxKey {
			break
		}
		skewScript = append(skewScript, plannerExec{q: hot, params: []types.Datum{types.NewInt(th)}})
	}
	out["skew"] = doublePass(skewScript)
	return out, nil
}

// doublePass repeats a script so every statement runs cold then warm.
func doublePass(script []plannerExec) []plannerExec {
	return append(append([]plannerExec(nil), script...), script...)
}

// plannerWorkloadNames is the fixed report order.
var plannerWorkloadNames = []string{"tpch", "dmv", "skew"}

// PlannerStudy runs the shootout: for every built-in strategy it measures
// planning wall time over the TPC-H join queries (≥ 4 tables, plannRounds
// fresh optimizations each) and then executes the three workloads through a
// per-strategy plan cache, collecting execution work, re-optimization counts
// and cache/guard verdicts. The TPC-H catalog is supplied by the caller (it
// is shared with the other studies); the DMV and skew substrates are built
// here at the given scale.
func PlannerStudy(tpchCat *catalog.Catalog, dmvScale float64, smoke bool) (*PlannerResult, error) {
	dmvCat := catalog.New()
	if err := dmv.Load(dmvCat, dmv.Config{Scale: dmvScale, Seed: 17}); err != nil {
		return nil, err
	}
	skewCat := catalog.New()
	if err := loadSkew(skewCat, skewSizes(smoke)); err != nil {
		return nil, err
	}

	// Planning-time set: the TPC-H queries with at least 4 tables, where the
	// DP space is large enough that enumeration dominates planning.
	tq, err := tpch.Queries(tpchCat)
	if err != nil {
		return nil, err
	}
	var joinNames []string
	for n, q := range tq {
		if len(q.Tables) >= 4 {
			joinNames = append(joinNames, n)
		}
	}
	sort.Strings(joinNames)
	rounds := 25
	if smoke {
		rounds = 5
	}

	workloads, err := plannerWorkloads(tpchCat, dmvCat, skewCat, smoke)
	if err != nil {
		return nil, err
	}
	cats := map[string]*catalog.Catalog{"tpch": tpchCat, "dmv": dmvCat, "skew": skewCat}

	res := &PlannerResult{Smoke: smoke, JoinQueries: joinNames}
	for _, st := range pop.Strategies() {
		row := PlannerStrategyResult{
			Strategy:    pop.StrategyName(st.Name()),
			Description: st.Describe(),
			PlanRounds:  rounds,
			PlanQueries: len(joinNames),
		}

		// Planning: fresh optimizer per round so no memoized state carries
		// over; only the Optimize call is timed.
		for _, name := range joinNames {
			q := tq[name]
			for i := 0; i < rounds; i++ {
				opt := newPlannerOptimizer(tpchCat, st)
				t0 := time.Now()
				if _, err := opt.Optimize(q); err != nil {
					return nil, fmt.Errorf("planner study (%s, %s): %w", st.Name(), name, err)
				}
				row.PlanNS += time.Since(t0).Nanoseconds()
				row.PlanCandidates += opt.EnumeratedCandidates
			}
		}

		// Execution: one plan cache and one metrics registry per workload, so
		// hits, invalidations and guard rejects are attributable.
		for _, wname := range plannerWorkloadNames {
			side := PlannerWorkload{Workload: wname}
			cache := plancache.New()
			reg := metrics.New()
			opts := pop.DefaultOptions()
			opts.Planner = st
			opts.Trace = reg
			runner := plancache.NewRunner(cache, cats[wname], opts)
			start := time.Now()
			for _, ex := range workloads[wname] {
				r, _, err := runner.Run(ex.q, ex.params)
				if err != nil {
					return nil, fmt.Errorf("planner study (%s, %s): %w", st.Name(), wname, err)
				}
				side.Executions++
				side.Rows += len(r.Rows)
				side.ExecWork += r.Work
				side.Reopts += r.Reopts
			}
			side.WallNS = time.Since(start).Nanoseconds()
			cs := cache.Stats()
			side.CacheHits, side.CacheMisses = cs.Hits, cs.Misses
			side.Invalidations = cs.Invalidations
			side.GuardRejects = reg.Snapshot().CacheGuardRejects
			row.Workloads = append(row.Workloads, side)
		}
		res.Strategies = append(res.Strategies, row)
	}

	var dp, greedy *PlannerStrategyResult
	for i := range res.Strategies {
		switch res.Strategies[i].Strategy {
		case pop.NameDPPOP:
			dp = &res.Strategies[i]
		case pop.NameGreedyPOP:
			greedy = &res.Strategies[i]
		default:
			// greedy-only and reopt-unguarded have no derived ratio row.
		}
	}
	if dp != nil && greedy != nil && dp.PlanNS > 0 && dp.PlanCandidates > 0 {
		res.PlanTimeRatioGreedyDP = float64(greedy.PlanNS) / float64(dp.PlanNS)
		res.PlanCandRatioGreedyDP = float64(greedy.PlanCandidates) / float64(dp.PlanCandidates)
	}
	return res, nil
}

// newPlannerOptimizer builds a fresh optimizer configured for the strategy's
// planning side only — the planning-time measurement's unit of work.
func newPlannerOptimizer(cat *catalog.Catalog, st pop.Strategy) *optimizer.Optimizer {
	opt := optimizer.New(cat)
	st.PlanConfig(opt)
	return opt
}

// WritePlannersJSON renders the shootout as indented JSON (BENCH_planners.json).
func WritePlannersJSON(w io.Writer, r *PlannerResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WritePlanners renders the shootout as human-readable tables.
func WritePlanners(w io.Writer, r *PlannerResult) {
	fmt.Fprintf(w, "Planner shootout: %d strategies × %d workloads (smoke=%v)\n",
		len(r.Strategies), len(plannerWorkloadNames), r.Smoke)
	fmt.Fprintf(w, "planning over TPC-H join queries %v × %d rounds:\n",
		r.JoinQueries, planRounds(r))
	fmt.Fprintf(w, "  %-16s %12s %14s\n", "strategy", "plan_ms", "candidates")
	for _, s := range r.Strategies {
		fmt.Fprintf(w, "  %-16s %12.2f %14d\n", s.Strategy, float64(s.PlanNS)/1e6, s.PlanCandidates)
	}
	fmt.Fprintf(w, "greedy/dp: %.4f of planning time, %.4f of candidates\n",
		r.PlanTimeRatioGreedyDP, r.PlanCandRatioGreedyDP)
	for _, wname := range plannerWorkloadNames {
		fmt.Fprintf(w, "workload %s:\n", wname)
		fmt.Fprintf(w, "  %-16s %6s %14s %7s %6s %6s %6s %8s %9s\n",
			"strategy", "execs", "exec_work", "reopts", "hits", "miss", "inval", "g_rejects", "wall_ms")
		for _, s := range r.Strategies {
			for _, side := range s.Workloads {
				if side.Workload != wname {
					continue
				}
				fmt.Fprintf(w, "  %-16s %6d %14.0f %7d %6d %6d %6d %8d %9.1f\n",
					s.Strategy, side.Executions, side.ExecWork, side.Reopts,
					side.CacheHits, side.CacheMisses, side.Invalidations,
					side.GuardRejects, float64(side.WallNS)/1e6)
			}
		}
	}
}

// planRounds returns the planning-round count recorded on the rows (they are
// uniform; 0 if the study is empty).
func planRounds(r *PlannerResult) int {
	if len(r.Strategies) == 0 {
		return 0
	}
	return r.Strategies[0].PlanRounds
}
