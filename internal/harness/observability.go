package harness

// The observability study quantifies what the trace/metrics/analyze stack
// costs (BENCH_observability.json): the same parameterized TPC-H Q10 sweep
// runs untraced, traced (JSONL + metrics registry), and traced-with-analyze,
// and the study compares simulated work (must be bit-identical — the
// zero-overhead guarantee on the measured substrate), wall time and heap
// allocations across the three.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/pop"
	"repro/internal/tpch"
	"repro/internal/trace"
	"repro/internal/types"
)

// ObservabilitySide aggregates one instrumentation mode of the study.
type ObservabilitySide struct {
	Label         string  `json:"label"`
	Executions    int     `json:"executions"`
	Rows          int     `json:"rows"`
	ExecWork      float64 `json:"exec_work"` // simulated work units, all runs
	Reopts        int     `json:"reopts"`
	WallNS        int64   `json:"wall_ns"`
	AllocsPerExec float64 `json:"allocs_per_exec"`
	// Events and TraceBytes describe the emitted JSONL stream (traced modes).
	Events     int64 `json:"events,omitempty"`
	TraceBytes int64 `json:"trace_bytes,omitempty"`
}

// ObservabilityResult is the study output (BENCH_observability.json).
type ObservabilityResult struct {
	Query    string `json:"query"`
	Sweeps   int    `json:"sweeps"`
	Bindings int    `json:"bindings_per_sweep"`

	Baseline ObservabilitySide `json:"baseline"`
	Traced   ObservabilitySide `json:"traced"`
	Analyzed ObservabilitySide `json:"analyzed"`

	// WorkIdentical certifies that tracing and analyze attribution did not
	// perturb the simulated substrate: all three modes charged bit-identical
	// work totals.
	WorkIdentical bool `json:"work_identical"`
	// TraceWallOverhead is (traced − baseline) / baseline wall time: the real
	// cost of recording the event stream, as a fraction of execution.
	TraceWallOverhead float64 `json:"trace_wall_overhead"`
	// AnalyzeWallOverhead is the same fraction for traced + per-operator
	// attribution (one clock reading per charge).
	AnalyzeWallOverhead float64 `json:"analyze_wall_overhead"`
	// HotPathAllocsOff is heap allocations per work charge with observability
	// off — the zero-allocation guarantee, measured, not asserted.
	HotPathAllocsOff float64 `json:"hot_path_allocs_per_charge_off"`
	// CheckpointEvents counts checkpoint_passed + checkpoint_violated events
	// the traced sweep emitted.
	CheckpointEvents int64 `json:"checkpoint_events"`
	// Metrics is the registry snapshot after the traced sweep.
	Metrics metrics.Snapshot `json:"metrics"`
}

// countWriter counts bytes written; the study's JSONL sink discards content.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// observabilitySide runs the full binding sweep in one instrumentation mode.
func observabilitySide(cat *catalog.Catalog, q *logical.Query, sweeps int, label string, analyze bool, rec trace.Recorder) (ObservabilitySide, error) {
	side := ObservabilitySide{Label: label}
	bindings := planCacheBindings()
	// Default-selectivity estimation (no parameter binding): extreme bindings
	// are misestimated, so the sweep exercises the violation/re-optimization
	// events, not just the passed ones.
	opts := pop.DefaultOptions()
	opts.Analyze = analyze
	opts.Trace = rec
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for s := 0; s < sweeps; s++ {
		for _, qty := range bindings {
			r, err := pop.NewRunner(cat, opts).Run(q, []types.Datum{types.NewFloat(qty)})
			if err != nil {
				return side, fmt.Errorf("observability study (%s, qty=%v): %w", label, qty, err)
			}
			side.Executions++
			side.Rows += len(r.Rows)
			side.ExecWork += r.Work
			side.Reopts += r.Reopts
		}
	}
	side.WallNS = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	side.AllocsPerExec = float64(after.Mallocs-before.Mallocs) / float64(side.Executions)
	return side, nil
}

// ObservabilityStudy sweeps parameterized Q10 in three modes — untraced,
// traced, traced+analyze — and reports the overhead of each layer.
func ObservabilityStudy(cat *catalog.Catalog, sweeps int) (*ObservabilityResult, error) {
	q, err := tpch.Q10Param(cat)
	if err != nil {
		return nil, err
	}
	res := &ObservabilityResult{
		Query:    "Q10(l_quantity <= ?0)",
		Sweeps:   sweeps,
		Bindings: len(planCacheBindings()),
	}

	if res.Baseline, err = observabilitySide(cat, q, sweeps, "baseline", false, nil); err != nil {
		return nil, err
	}

	cw := &countWriter{}
	jsonl := trace.NewJSONL(cw)
	reg := metrics.New()
	if res.Traced, err = observabilitySide(cat, q, sweeps, "traced", false, trace.Multi(jsonl, reg)); err != nil {
		return nil, err
	}
	if err := jsonl.Flush(); err != nil {
		return nil, err
	}
	res.Traced.Events = jsonl.Events()
	res.Traced.TraceBytes = cw.n
	res.Metrics = reg.Snapshot()
	res.CheckpointEvents = res.Metrics.ChecksPassed + res.Metrics.CheckViolations

	acw := &countWriter{}
	ajsonl := trace.NewJSONL(acw)
	if res.Analyzed, err = observabilitySide(cat, q, sweeps, "analyzed", true, trace.Multi(ajsonl, metrics.New())); err != nil {
		return nil, err
	}
	if err := ajsonl.Flush(); err != nil {
		return nil, err
	}
	res.Analyzed.Events = ajsonl.Events()
	res.Analyzed.TraceBytes = acw.n

	res.WorkIdentical = res.Baseline.ExecWork == res.Traced.ExecWork &&
		res.Traced.ExecWork == res.Analyzed.ExecWork
	if res.Baseline.WallNS > 0 {
		res.TraceWallOverhead = float64(res.Traced.WallNS-res.Baseline.WallNS) / float64(res.Baseline.WallNS)
		res.AnalyzeWallOverhead = float64(res.Analyzed.WallNS-res.Baseline.WallNS) / float64(res.Baseline.WallNS)
	}
	res.HotPathAllocsOff = executor.ChargeAllocsPerRun(1<<16, false)
	return res, nil
}

// WriteObservabilityJSON renders the study as indented JSON.
func WriteObservabilityJSON(w io.Writer, r *ObservabilityResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteObservability renders the study as a human-readable table.
func WriteObservability(w io.Writer, r *ObservabilityResult) {
	fmt.Fprintf(w, "Observability study: %s, %d sweeps × %d bindings\n", r.Query, r.Sweeps, r.Bindings)
	fmt.Fprintf(w, "%-10s %6s %14s %8s %10s %14s %10s %12s\n",
		"mode", "execs", "exec_work", "reopts", "wall_ms", "allocs/exec", "events", "trace_bytes")
	row := func(s ObservabilitySide) {
		fmt.Fprintf(w, "%-10s %6d %14.0f %8d %10.1f %14.0f %10d %12d\n",
			s.Label, s.Executions, s.ExecWork, s.Reopts, float64(s.WallNS)/1e6,
			s.AllocsPerExec, s.Events, s.TraceBytes)
	}
	row(r.Baseline)
	row(r.Traced)
	row(r.Analyzed)
	fmt.Fprintf(w, "work identical across modes: %v\n", r.WorkIdentical)
	fmt.Fprintf(w, "wall overhead: trace %+.1f%%, trace+analyze %+.1f%%\n",
		100*r.TraceWallOverhead, 100*r.AnalyzeWallOverhead)
	fmt.Fprintf(w, "hot-path allocations per charge (observability off): %g\n", r.HotPathAllocsOff)
	fmt.Fprintf(w, "checkpoint events in traced sweep: %d (%d passed, %d violated)\n",
		r.CheckpointEvents, r.Metrics.ChecksPassed, r.Metrics.CheckViolations)
}
