package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/tpch"
)

// TestGreedyCandidateRatio pins the shootout's planning-cost claim without
// wall clocks: over the TPC-H join queries (≥ 4 tables) the greedy order
// must enumerate at most a tenth of DP's candidates. Candidate counts are
// deterministic, so this is the stable proxy for the ≤ 1/10 planning-time
// bar BENCH_planners.json reports.
func TestGreedyCandidateRatio(t *testing.T) {
	cat := tpchCat(t)
	qs, err := tpch.Queries(cat)
	if err != nil {
		t.Fatal(err)
	}
	var dp, greedy int
	for name, q := range qs {
		if len(q.Tables) < 4 {
			continue
		}
		o1 := optimizer.New(cat)
		if _, err := o1.Optimize(q); err != nil {
			t.Fatalf("%s dp: %v", name, err)
		}
		dp += o1.EnumeratedCandidates
		o2 := optimizer.New(cat)
		o2.JoinOrder = optimizer.JoinOrderGreedy
		if _, err := o2.Optimize(q); err != nil {
			t.Fatalf("%s greedy: %v", name, err)
		}
		greedy += o2.EnumeratedCandidates
	}
	if dp == 0 || greedy == 0 {
		t.Fatalf("no candidates counted: dp=%d greedy=%d", dp, greedy)
	}
	if 10*greedy > dp {
		t.Fatalf("greedy enumerated %d candidates vs DP's %d — more than 1/10th", greedy, dp)
	}
}

// TestPlannerStudySmoke runs the smoke-scale shootout end to end and checks
// the result shape the benchmark JSON depends on: all strategies, all
// workloads, populated counters, and the greedy-vs-DP ratios.
func TestPlannerStudySmoke(t *testing.T) {
	res, err := PlannerStudy(tpchCat(t), 0.2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 4 {
		t.Fatalf("strategies = %d, want 4", len(res.Strategies))
	}
	if len(res.JoinQueries) == 0 {
		t.Fatal("no TPC-H join queries selected for the planning set")
	}
	if !(res.PlanCandRatioGreedyDP > 0 && res.PlanCandRatioGreedyDP <= 0.1) {
		t.Errorf("candidate ratio %v outside (0, 0.1]", res.PlanCandRatioGreedyDP)
	}
	if res.PlanTimeRatioGreedyDP <= 0 {
		t.Errorf("plan-time ratio %v not positive", res.PlanTimeRatioGreedyDP)
	}

	byName := map[pop.StrategyName]*PlannerStrategyResult{}
	for i := range res.Strategies {
		s := &res.Strategies[i]
		byName[s.Strategy] = s
		if len(s.Workloads) != 3 {
			t.Fatalf("%s ran %d workloads, want 3", s.Strategy, len(s.Workloads))
		}
		if s.PlanNS <= 0 || s.PlanCandidates <= 0 {
			t.Errorf("%s planning counters empty: ns=%d cand=%d", s.Strategy, s.PlanNS, s.PlanCandidates)
		}
		for _, w := range s.Workloads {
			if w.Executions == 0 || w.ExecWork == 0 || w.Rows < 0 {
				t.Errorf("%s/%s execution counters empty: %+v", s.Strategy, w.Workload, w)
			}
			if w.CacheMisses == 0 {
				t.Errorf("%s/%s: a fresh cache must miss at least once", s.Strategy, w.Workload)
			}
		}
	}

	// The adaptive strategies must actually adapt somewhere, and greedy-only
	// must never re-optimize (POP is off).
	for _, name := range []pop.StrategyName{pop.NameDPPOP, pop.NameGreedyPOP, pop.NameReoptUnguarded} {
		var reopts int
		for _, w := range byName[name].Workloads {
			reopts += w.Reopts
		}
		if reopts == 0 {
			t.Errorf("%s never re-optimized across any workload", name)
		}
	}
	for _, w := range byName[pop.NameGreedyOnly].Workloads {
		if w.Reopts != 0 {
			t.Errorf("greedy-only re-optimized on %s: POP should be disabled", w.Workload)
		}
	}

	var buf bytes.Buffer
	if err := WritePlannersJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back PlannerResult
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_planners.json round trip: %v", err)
	}
	var text bytes.Buffer
	WritePlanners(&text, res)
	for _, want := range []string{"dp-pop", "greedy-pop", "greedy-only", "reopt-unguarded", "tpch", "dmv", "skew"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q", want)
		}
	}
}
