package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/types"
)

// ParallelPoint is one (query, DOP) measurement of the parallel-execution
// study. WorkUnits is deterministic simulated work — identical at every DOP
// by construction — while WallNS is real wall-clock time and scales with the
// cores the machine actually has.
type ParallelPoint struct {
	Query     string  `json:"query"`
	DOP       int     `json:"dop"`
	WorkUnits float64 `json:"work_units"`
	WallNS    int64   `json:"wall_ns"`
	Rows      int     `json:"rows"`
	Speedup   float64 `json:"speedup"` // dop=1 wall-clock / this wall-clock
}

// parallelQuery names one query of the study.
type parallelQuery struct {
	name  string
	query *logical.Query
}

// parallelQueries builds the study workload over a loaded TPC-H catalog:
// a selective partitioned hash join (scan+probe dominate, few rows cross
// the gather) and a plain gathered scan.
func parallelQueries(cat *catalog.Catalog) ([]parallelQuery, error) {
	jb := logical.NewBuilder(cat)
	jb.AddTable("lineitem", "l")
	jb.AddTable("orders", "o")
	jb.Where(&expr.Cmp{Op: expr.EQ, L: jb.Col("l", "l_orderkey"), R: jb.Col("o", "o_orderkey")})
	jb.Where(&expr.Cmp{Op: expr.GT, L: jb.Col("l", "l_quantity"), R: &expr.Const{Val: types.NewFloat(45)}})
	jb.SelectCol("l", "l_orderkey")
	jb.SelectCol("l", "l_quantity")
	jb.SelectCol("o", "o_totalprice")
	join, err := jb.Build()
	if err != nil {
		return nil, err
	}

	sb := logical.NewBuilder(cat)
	sb.AddTable("lineitem", "l")
	sb.Where(&expr.Cmp{Op: expr.GT, L: sb.Col("l", "l_quantity"), R: &expr.Const{Val: types.NewFloat(48)}})
	sb.SelectCol("l", "l_orderkey")
	sb.SelectCol("l", "l_quantity")
	scan, err := sb.Build()
	if err != nil {
		return nil, err
	}

	return []parallelQuery{
		{name: "hashjoin_lineitem_orders", query: join},
		{name: "scan_lineitem", query: scan},
	}, nil
}

// ParallelStudy plans each study query once at Workers=4 and executes that
// single parallel plan at DOP 1, 2, 4, and 8, reporting simulated work,
// wall-clock time, and row counts. The plan is fixed across DOPs so the
// comparison isolates the runtime, not the optimizer.
func ParallelStudy(cat *catalog.Catalog) ([]ParallelPoint, error) {
	qs, err := parallelQueries(cat)
	if err != nil {
		return nil, err
	}
	var out []ParallelPoint
	for _, pq := range qs {
		opt := optimizer.New(cat)
		opt.DisableNLJN = true
		opt.DisableMGJN = true
		opt.Model.Params.Workers = 4
		plan, err := opt.Optimize(pq.query)
		if err != nil {
			return nil, fmt.Errorf("parallel study %s: %w", pq.name, err)
		}
		var base time.Duration
		for _, dop := range []int{1, 2, 4, 8} {
			meter := &executor.Meter{}
			ex, err := executor.NewExecutor(cat, pq.query, nil, opt.Model.Params, meter)
			if err != nil {
				return nil, fmt.Errorf("parallel study %s dop=%d: %w", pq.name, dop, err)
			}
			ex.DOP = dop
			root, err := ex.Build(plan)
			if err != nil {
				return nil, fmt.Errorf("parallel study %s dop=%d: %w", pq.name, dop, err)
			}
			start := time.Now()
			rows, err := executor.Run(root)
			if err != nil {
				return nil, fmt.Errorf("parallel study %s dop=%d: %w", pq.name, dop, err)
			}
			elapsed := time.Since(start)
			if dop == 1 {
				base = elapsed
			}
			speedup := 0.0
			if elapsed > 0 {
				speedup = float64(base) / float64(elapsed)
			}
			out = append(out, ParallelPoint{
				Query:     pq.name,
				DOP:       dop,
				WorkUnits: meter.Work(),
				WallNS:    elapsed.Nanoseconds(),
				Rows:      len(rows),
				Speedup:   speedup,
			})
		}
	}
	return out, nil
}

// WriteParallelJSON renders the study as indented JSON (BENCH_parallel.json).
func WriteParallelJSON(w io.Writer, points []ParallelPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(points)
}

// WriteParallel renders the study as a human-readable table.
func WriteParallel(w io.Writer, points []ParallelPoint) {
	fmt.Fprintln(w, "Parallel execution study (fixed Workers=4 plan, varying runtime DOP)")
	fmt.Fprintf(w, "%-26s %4s %14s %12s %8s %8s\n", "query", "dop", "work_units", "wall_ms", "rows", "speedup")
	for _, p := range points {
		fmt.Fprintf(w, "%-26s %4d %14.0f %12.3f %8d %7.2fx\n",
			p.Query, p.DOP, p.WorkUnits, float64(p.WallNS)/1e6, p.Rows, p.Speedup)
	}
}
