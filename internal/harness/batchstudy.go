package harness

// The batch-execution study quantifies the vectorized hot path
// (BENCH_batch.json): the same parameterized TPC-H Q10 sweep runs
// row-at-a-time and batch-at-a-time at several batch sizes and DOPs, and the
// study compares simulated work (must be bit-identical within each DOP — the
// correctness half of the tentpole), wall time and heap allocations (the
// performance half).

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/tpch"
	"repro/internal/types"
)

// BatchStudySide aggregates one (execution mode × DOP) cell of the study.
type BatchStudySide struct {
	Label         string  `json:"label"`
	BatchSize     int     `json:"batch_size"` // 0 = row-at-a-time
	DOP           int     `json:"dop"`
	Executions    int     `json:"executions"`
	Rows          int     `json:"rows"`
	ExecWork      float64 `json:"exec_work"` // simulated work units, all runs
	Reopts        int     `json:"reopts"`
	WallNS        int64   `json:"wall_ns"`
	AllocsPerExec float64 `json:"allocs_per_exec"`
}

// BatchStudyResult is the study output (BENCH_batch.json).
type BatchStudyResult struct {
	Query    string `json:"query"`
	Sweeps   int    `json:"sweeps"`
	Bindings int    `json:"bindings_per_sweep"`

	Sides []BatchStudySide `json:"sides"`

	// WorkIdentical certifies the vectorization contract: within every DOP,
	// all batch sizes (including row mode) charged bit-identical work totals,
	// returned the same row count and re-optimized the same number of times.
	WorkIdentical bool `json:"work_identical"`
	// AllocReduction is row-mode allocations per execution divided by the
	// largest batch size's, at DOP 1.
	AllocReduction float64 `json:"alloc_reduction"`
	// WallSpeedup64 / WallSpeedup1024 are row-mode wall time divided by the
	// batch=64 / batch=1024 wall time, at DOP 1.
	WallSpeedup64   float64 `json:"wall_speedup_64"`
	WallSpeedup1024 float64 `json:"wall_speedup_1024"`
}

// batchStudySide runs the full binding sweep in one mode×DOP cell.
func batchStudySide(cat *catalog.Catalog, q *logical.Query, sweeps, workers, batchSize int) (BatchStudySide, error) {
	label := "row"
	if batchSize > 0 {
		label = fmt.Sprintf("batch=%d", batchSize)
	}
	side := BatchStudySide{Label: label, BatchSize: batchSize, DOP: workers}
	bindings := planCacheBindings()
	opts := pop.DefaultOptions()
	opts.BatchSize = batchSize
	if workers > 1 {
		opts.Configure = func(o *optimizer.Optimizer) { o.Model.Params.Workers = workers }
	}
	exec := func(qty float64) error {
		r, err := pop.NewRunner(cat, opts).Run(q, []types.Datum{types.NewFloat(qty)})
		if err != nil {
			return fmt.Errorf("batch study (%s dop=%d, qty=%v): %w", label, workers, qty, err)
		}
		side.Executions++
		side.Rows += len(r.Rows)
		side.ExecWork += r.Work
		side.Reopts += r.Reopts
		return nil
	}
	// One untimed warm-up binding stabilizes the wall comparison (first-touch
	// page faults, pool population).
	warm := side
	if err := exec(bindings[0]); err != nil {
		return side, err
	}
	side = warm
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for s := 0; s < sweeps; s++ {
		for _, qty := range bindings {
			if err := exec(qty); err != nil {
				return side, err
			}
		}
	}
	side.WallNS = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	side.AllocsPerExec = float64(after.Mallocs-before.Mallocs) / float64(side.Executions)
	return side, nil
}

// BatchStudy sweeps parameterized Q10 row-at-a-time and at batch sizes
// {1, 64, 1024}, each at DOP {1, 2, 4}, and reports the work-identity
// certificate plus the allocation and wall-clock wins.
func BatchStudy(cat *catalog.Catalog, sweeps int) (*BatchStudyResult, error) {
	q, err := tpch.Q10Param(cat)
	if err != nil {
		return nil, err
	}
	res := &BatchStudyResult{
		Query:    "Q10(l_quantity <= ?0)",
		Sweeps:   sweeps,
		Bindings: len(planCacheBindings()),
	}
	sizes := []int{0, 1, 64, 1024}
	dops := []int{1, 2, 4}
	cells := make(map[[2]int]BatchStudySide)
	for _, dop := range dops {
		for _, size := range sizes {
			side, err := batchStudySide(cat, q, sweeps, dop, size)
			if err != nil {
				return nil, err
			}
			res.Sides = append(res.Sides, side)
			cells[[2]int{dop, size}] = side
		}
	}

	res.WorkIdentical = true
	for _, dop := range dops {
		ref := cells[[2]int{dop, 0}]
		for _, size := range sizes[1:] {
			s := cells[[2]int{dop, size}]
			if s.ExecWork != ref.ExecWork || s.Rows != ref.Rows || s.Reopts != ref.Reopts {
				res.WorkIdentical = false
			}
		}
	}
	row := cells[[2]int{1, 0}]
	if b := cells[[2]int{1, 1024}]; b.AllocsPerExec > 0 {
		res.AllocReduction = row.AllocsPerExec / b.AllocsPerExec
	}
	if b := cells[[2]int{1, 64}]; b.WallNS > 0 {
		res.WallSpeedup64 = float64(row.WallNS) / float64(b.WallNS)
	}
	if b := cells[[2]int{1, 1024}]; b.WallNS > 0 {
		res.WallSpeedup1024 = float64(row.WallNS) / float64(b.WallNS)
	}
	return res, nil
}

// WriteBatchJSON renders the study as indented JSON.
func WriteBatchJSON(w io.Writer, r *BatchStudyResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteBatch renders the study as a human-readable table.
func WriteBatch(w io.Writer, r *BatchStudyResult) {
	fmt.Fprintf(w, "Batch execution study: %s, %d sweeps × %d bindings\n", r.Query, r.Sweeps, r.Bindings)
	fmt.Fprintf(w, "%-12s %4s %6s %14s %8s %10s %14s\n",
		"mode", "dop", "execs", "exec_work", "reopts", "wall_ms", "allocs/exec")
	for _, s := range r.Sides {
		fmt.Fprintf(w, "%-12s %4d %6d %14.0f %8d %10.1f %14.0f\n",
			s.Label, s.DOP, s.Executions, s.ExecWork, s.Reopts,
			float64(s.WallNS)/1e6, s.AllocsPerExec)
	}
	fmt.Fprintf(w, "work identical across modes (per DOP): %v\n", r.WorkIdentical)
	fmt.Fprintf(w, "DOP-1 allocation reduction at batch=1024: %.2fx\n", r.AllocReduction)
	fmt.Fprintf(w, "DOP-1 wall speedup: batch=64 %.2fx, batch=1024 %.2fx\n",
		r.WallSpeedup64, r.WallSpeedup1024)
}
