// Package harness drives the paper's experiments — one function per table or
// figure of the evaluation (§5, §6) — and renders their results as text.
// All measurements are in deterministic simulated work units (see DESIGN.md):
// identical inputs reproduce identical numbers on any machine.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/dmv"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/tpch"
	"repro/internal/types"
)

// runOnce executes a query under the given POP options and returns the
// result.
func runOnce(cat *catalog.Catalog, q *logical.Query, opts pop.Options, params []types.Datum) (*pop.Result, error) {
	return pop.NewRunner(cat, opts).Run(q, params)
}

// ---------------------------------------------------------------------------
// Figure 11 — robustness of TPC-H Q10 under a parameter marker.

// Fig11Point is one selectivity step of the Figure 11 sweep.
type Fig11Point struct {
	SelectivityPct float64
	POPDefault     float64 // work: parameter marker + POP
	NoPOPDefault   float64 // work: parameter marker, no POP
	Optimal        float64 // work: correct literal selectivity, no POP
	Reopts         int
	OptimalPlan    string // signature of the optimal plan's join structure
}

// Fig11 sweeps the actual selectivity of the LINEITEM predicate of Q10 from
// low to high, comparing POP-with-default-estimate against the static
// default plan and the correct-estimate optimal plan (paper Figure 11).
func Fig11(cat *catalog.Catalog, steps int) ([]Fig11Point, error) {
	if steps <= 0 {
		steps = 10
	}
	qParam, err := tpch.Q10Param(cat)
	if err != nil {
		return nil, err
	}
	var out []Fig11Point
	for s := 1; s <= steps; s++ {
		// Quadratic spacing concentrates points at low selectivities, where
		// the optimal plan transitions between index NLJN and hash join.
		frac := float64(s) / float64(steps)
		pct := frac * frac * 100
		qty := pct / 100 * 50 // l_quantity uniform on [1,50]
		params := []types.Datum{types.NewFloat(qty)}

		popRes, err := runOnce(cat, qParam, pop.DefaultOptions(), params)
		if err != nil {
			return nil, fmt.Errorf("fig11 POP at %.0f%%: %w", pct, err)
		}
		noPopRes, err := runOnce(cat, qParam, pop.Options{Enabled: false}, params)
		if err != nil {
			return nil, fmt.Errorf("fig11 static at %.0f%%: %w", pct, err)
		}
		qLit, err := tpch.Q10Literal(cat, qty)
		if err != nil {
			return nil, err
		}
		optRes, err := runOnce(cat, qLit, pop.Options{Enabled: false}, nil)
		if err != nil {
			return nil, fmt.Errorf("fig11 optimal at %.0f%%: %w", pct, err)
		}
		out = append(out, Fig11Point{
			SelectivityPct: pct,
			POPDefault:     popRes.Work,
			NoPOPDefault:   noPopRes.Work,
			Optimal:        optRes.Work,
			Reopts:         popRes.Reopts,
			OptimalPlan:    planShape(optRes.Attempts[0].Plan),
		})
	}
	return out, nil
}

// planShape summarizes the join-operator structure of a plan, used to count
// how many distinct optimal plans the sweep passes through.
func planShape(p *optimizer.Plan) string {
	var parts []string
	p.Walk(func(n *optimizer.Plan) {
		if n.Op.IsJoin() {
			s := n.Op.String()
			if n.Op == optimizer.OpNLJN && n.IndexJoin {
				s += "ix"
			}
			parts = append(parts, s)
		}
	})
	return strings.Join(parts, ">")
}

// DistinctOptimalPlans counts the distinct optimal plan shapes in a sweep —
// the paper reports Q10 passing through 5 optimal plans.
func DistinctOptimalPlans(points []Fig11Point) int {
	seen := map[string]bool{}
	for _, p := range points {
		seen[p.OptimalPlan] = true
	}
	return len(seen)
}

// WriteFig11 renders the sweep.
func WriteFig11(w io.Writer, points []Fig11Point) {
	fmt.Fprintln(w, "Figure 11 — Robustness of TPC-H Q10 with POP (work units)")
	fmt.Fprintf(w, "%10s %14s %14s %14s %8s\n", "actual sel", "POP+default", "default(noPOP)", "optimal", "reopts")
	for _, p := range points {
		fmt.Fprintf(w, "%9.0f%% %14.0f %14.0f %14.0f %8d\n",
			p.SelectivityPct, p.POPDefault, p.NoPOPDefault, p.Optimal, p.Reopts)
	}
	fmt.Fprintf(w, "distinct optimal plans across sweep: %d\n", DistinctOptimalPlans(points))
}

// ---------------------------------------------------------------------------
// Figure 12 — overhead of LC re-optimization (dummy reopt, hash join
// disabled to create SORT materialization points).

// Fig12Bar is one bar of Figure 12: a query executed with re-optimization
// forced at one checkpoint.
type Fig12Bar struct {
	Query      string
	CheckID    int
	Baseline   float64 // work without any re-optimization
	Total      float64 // work with the forced re-optimization
	Before     float64 // component before the re-optimization
	After      float64 // component after
	Normalized float64 // Total / Baseline
}

// fig12Queries are the queries the paper uses for the LC overhead study.
var fig12Queries = []string{"Q3", "Q4", "Q5", "Q7", "Q9"}

// Fig12 measures the overhead of lazy-check re-optimization: each query runs
// once normally and once per checkpoint with a forced failure there; the
// normalized total shows the overhead (paper: ~2-3%).
func Fig12(cat *catalog.Catalog) ([]Fig12Bar, error) {
	queries, err := tpch.Queries(cat)
	if err != nil {
		return nil, err
	}
	// The paper disables hash join for this experiment so the optimizer
	// generates lots of materialization points; we additionally disable the
	// index nested-loop join, which in this engine would otherwise avoid the
	// sorts the merge joins need.
	noHash := func(o *optimizer.Optimizer) { o.DisableHSJN = true; o.DisableIndexJoin = true }
	var out []Fig12Bar
	for _, name := range fig12Queries {
		q := queries[name]
		basePol := pop.Policy{LC: true, RequireBoundedRange: false}
		baseOpts := pop.Options{Enabled: true, Policy: basePol, MaxReopts: 3, Configure: noHash}
		base, err := runOnce(cat, q, baseOpts, nil)
		if err != nil {
			return nil, fmt.Errorf("fig12 %s baseline: %w", name, err)
		}
		if base.Reopts != 0 {
			return nil, fmt.Errorf("fig12 %s baseline unexpectedly re-optimized", name)
		}
		nChecks := base.Attempts[0].Checks
		// Trigger from up to the first two checkpoints (the paper's "a"/"b").
		limit := nChecks
		if limit > 2 {
			limit = 2
		}
		for id := 0; id < limit; id++ {
			pol := basePol
			pol.FailCheckIDs = map[int]bool{id: true}
			opts := pop.Options{Enabled: true, Policy: pol, MaxReopts: 3, Configure: noHash}
			res, err := runOnce(cat, q, opts, nil)
			if err != nil {
				return nil, fmt.Errorf("fig12 %s check %d: %w", name, id, err)
			}
			if res.Reopts == 0 {
				continue // checkpoint never reached in this plan
			}
			before := res.Attempts[1].WorkBefore
			out = append(out, Fig12Bar{
				Query:      name,
				CheckID:    id,
				Baseline:   base.Work,
				Total:      res.Work,
				Before:     before,
				After:      res.Work - before,
				Normalized: res.Work / base.Work,
			})
		}
	}
	return out, nil
}

// WriteFig12 renders the bars.
func WriteFig12(w io.Writer, bars []Fig12Bar) {
	fmt.Fprintln(w, "Figure 12 — Normalized execution with LC re-optimization (1.0 = no reopt)")
	fmt.Fprintf(w, "%6s %6s %12s %12s %12s %11s\n", "query", "check", "baseline", "before", "after", "normalized")
	for _, b := range bars {
		fmt.Fprintf(w, "%6s %6d %12.0f %12.0f %12.0f %11.3f\n",
			b.Query, b.CheckID, b.Baseline, b.Before, b.After, b.Normalized)
	}
}

// ---------------------------------------------------------------------------
// Figure 13 — cost of LCEM eager materialization without re-optimization.

// Fig13Row is one query's LCEM overhead measurement.
type Fig13Row struct {
	Query    string
	Plain    float64 // work without POP
	WithLCEM float64 // work with LCEM materializations added, checks inert
	Overhead float64 // WithLCEM / Plain
	NLJNs    int     // NLJN outers materialized
}

// Fig13 adds LCEM check/materialization points on the outer of every NLJN
// and measures the added cost with re-optimization disabled (paper: the
// overhead is negligible because NLJN outers are small when NLJN wins).
func Fig13(cat *catalog.Catalog) ([]Fig13Row, error) {
	queries, err := tpch.Queries(cat)
	if err != nil {
		return nil, err
	}
	var out []Fig13Row
	for _, name := range fig12Queries {
		q := queries[name]
		plain, err := runOnce(cat, q, pop.Options{Enabled: false}, nil)
		if err != nil {
			return nil, fmt.Errorf("fig13 %s plain: %w", name, err)
		}
		pol := pop.Policy{LCEM: true, RequireBoundedRange: false, Unchecked: true}
		res, err := runOnce(cat, q, pop.Options{Enabled: true, Policy: pol, MaxReopts: 3}, nil)
		if err != nil {
			return nil, fmt.Errorf("fig13 %s LCEM: %w", name, err)
		}
		out = append(out, Fig13Row{
			Query:    name,
			Plain:    plain.Work,
			WithLCEM: res.Work,
			Overhead: res.Work / plain.Work,
			NLJNs:    res.Attempts[0].Checks,
		})
	}
	return out, nil
}

// WriteFig13 renders the overhead table.
func WriteFig13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintln(w, "Figure 13 — Cost of lazy checking with eager materialization (no reopt)")
	fmt.Fprintf(w, "%6s %12s %12s %10s %6s\n", "query", "plain", "with LCEM", "overhead", "LCEMs")
	for _, r := range rows {
		fmt.Fprintf(w, "%6s %12.0f %12.0f %10.4f %6d\n", r.Query, r.Plain, r.WithLCEM, r.Overhead, r.NLJNs)
	}
}

// ---------------------------------------------------------------------------
// Figure 14 — checkpoint opportunities over query execution.

// Fig14Point is one checkpoint's observed timing, as fractions of the
// query's total work. ECB checkpoints span a range (Start..End); the others
// are instants (Start == End).
type Fig14Point struct {
	Query  string
	Flavor string
	Start  float64
	End    float64
}

// fig14Queries match the paper's Figure 14.
var fig14Queries = []string{"Q2", "Q3", "Q4", "Q5", "Q7", "Q8", "Q11", "Q18"}

// Fig14 places every checkpoint flavor with firing disabled and records when
// each checkpoint is encountered during execution.
func Fig14(cat *catalog.Catalog) ([]Fig14Point, error) {
	queries, err := tpch.Queries(cat)
	if err != nil {
		return nil, err
	}
	var out []Fig14Point
	policies := []pop.Policy{
		{LC: true, LCEM: true, RequireBoundedRange: false, Unchecked: true},
		{ECB: true, RequireBoundedRange: false, Unchecked: true},
	}
	for _, name := range fig14Queries {
		q := queries[name]
		for pi, pol := range policies {
			res, err := runOnce(cat, q, pop.Options{Enabled: true, Policy: pol, MaxReopts: 3}, nil)
			if err != nil {
				return nil, fmt.Errorf("fig14 %s policy %d: %w", name, pi, err)
			}
			if res.Work <= 0 {
				continue
			}
			for _, obs := range res.CheckStats {
				if !obs.Touched {
					continue
				}
				start := obs.FirstWork / res.Work
				end := obs.DoneWork / res.Work
				if obs.Meta.Flavor != optimizer.ECB {
					end = start
				}
				flavor := obs.Meta.Flavor.String()
				if obs.Meta.Where != "" {
					flavor += " (" + obs.Meta.Where + ")"
				}
				out = append(out, Fig14Point{
					Query:  name,
					Flavor: flavor,
					Start:  start,
					End:    end,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Query != out[j].Query {
			return out[i].Query < out[j].Query
		}
		return out[i].Start < out[j].Start
	})
	return out, nil
}

// WriteFig14 renders the opportunity scatter.
func WriteFig14(w io.Writer, points []Fig14Point) {
	fmt.Fprintln(w, "Figure 14 — Checkpoint opportunities (fraction of execution completed)")
	fmt.Fprintf(w, "%6s %-22s %8s %8s\n", "query", "flavor", "start", "end")
	for _, p := range points {
		fmt.Fprintf(w, "%6s %-22s %8.3f %8.3f\n", p.Query, p.Flavor, p.Start, p.End)
	}
}

// ---------------------------------------------------------------------------
// Figures 15 & 16 — the DMV case study.

// DMVResult is one workload query's POP-vs-static outcome (Figure 15 scatter
// point and Figure 16 speedup bar).
type DMVResult struct {
	Name    string
	Desc    string
	WorkOff float64
	WorkOn  float64
	Reopts  int
	Factor  float64 // >1 speedup; <-1 regression (paper's signed convention)
}

// DMVStudy runs the 39-query DMV workload with and without POP.
func DMVStudy(cat *catalog.Catalog, qs []dmv.QueryInfo) ([]DMVResult, error) {
	var out []DMVResult
	for _, qi := range qs {
		off, err := runOnce(cat, qi.Query, pop.Options{Enabled: false}, nil)
		if err != nil {
			return nil, fmt.Errorf("dmv %s static: %w", qi.Name, err)
		}
		on, err := runOnce(cat, qi.Query, pop.DefaultOptions(), nil)
		if err != nil {
			return nil, fmt.Errorf("dmv %s POP: %w", qi.Name, err)
		}
		factor := off.Work / on.Work
		if factor < 1 && factor > 0 {
			factor = -on.Work / off.Work // regression, signed like Fig. 16
		}
		out = append(out, DMVResult{
			Name:    qi.Name,
			Desc:    qi.Desc,
			WorkOff: off.Work,
			WorkOn:  on.Work,
			Reopts:  on.Reopts,
			Factor:  factor,
		})
	}
	return out, nil
}

// DMVSummary aggregates the study: improved/regressed counts and extremes.
type DMVSummary struct {
	Improved, Regressed, Neutral int
	MaxSpeedup, MaxRegression    float64
	TotalReopts                  int
}

// Summarize computes the Figure 15/16 headline numbers.
func Summarize(results []DMVResult) DMVSummary {
	var s DMVSummary
	s.MaxSpeedup, s.MaxRegression = 1, 1
	for _, r := range results {
		switch {
		case r.Factor > 1.02:
			s.Improved++
			if r.Factor > s.MaxSpeedup {
				s.MaxSpeedup = r.Factor
			}
		case r.Factor < -1.02:
			s.Regressed++
			if -r.Factor > s.MaxRegression {
				s.MaxRegression = -r.Factor
			}
		default:
			s.Neutral++
		}
		s.TotalReopts += r.Reopts
	}
	return s
}

// WriteFig15 renders the response-time scatter (work with vs without POP).
func WriteFig15(w io.Writer, results []DMVResult) {
	fmt.Fprintln(w, "Figure 15 — DMV response (work units): with POP vs without POP")
	fmt.Fprintf(w, "%-7s %14s %14s %7s  %s\n", "query", "without POP", "with POP", "reopts", "predicates")
	for _, r := range results {
		fmt.Fprintf(w, "%-7s %14.0f %14.0f %7d  %s\n", r.Name, r.WorkOff, r.WorkOn, r.Reopts, r.Desc)
	}
}

// WriteFig16 renders the per-query speedup/regression factors and summary.
func WriteFig16(w io.Writer, results []DMVResult) {
	fmt.Fprintln(w, "Figure 16 — Speedup (+) / regression (−) factor per DMV query")
	for _, r := range results {
		fmt.Fprintf(w, "%-7s %+8.2f\n", r.Name, r.Factor)
	}
	s := Summarize(results)
	fmt.Fprintf(w, "improved=%d regressed=%d neutral=%d  max speedup=%.1fx  max regression=%.1fx  reopts=%d\n",
		s.Improved, s.Regressed, s.Neutral, s.MaxSpeedup, s.MaxRegression, s.TotalReopts)
}

// ---------------------------------------------------------------------------
// Table 1 — placement, risk and opportunity per checkpoint flavor.

// Table1Row describes one checkpoint flavor (paper Table 1).
type Table1Row struct {
	Flavor      string
	Placement   string
	Risk        string
	Opportunity string
}

// Table1 returns the flavor summary table.
func Table1() []Table1Row {
	return []Table1Row{
		{"LC", "CHECK above materialization points", "very low — only context switching", "low, only at materialization points"},
		{"LCEM", "CHECK-materialization pairs on outer of NLJN", "context switching + materialization overhead", "materialization points and NLJN outers"},
		{"ECB", "BUFCHECK on outer of NLJN", "high — exact cardinality of subplan below ECB not available", "can re-optimize anytime during materialization"},
		{"ECWC", "CHECK below materialization points", "high — may throw away arbitrary work", "anywhere below a materialization point"},
		{"ECDC", "CHECK + INSERT before reopt; anti-join after", "high — may throw away arbitrary work", "anywhere in the plan of an SPJ query"},
	}
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — Placement, risk and opportunity of checkpoint flavors")
	for _, r := range Table1() {
		fmt.Fprintf(w, "%-5s | %-46s | %-55s | %s\n", r.Flavor, r.Placement, r.Risk, r.Opportunity)
	}
}
