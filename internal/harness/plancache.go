package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/pop"
	"repro/internal/tpch"
	"repro/internal/types"
)

// PlanCacheSide aggregates one mode (cached vs always-reoptimize) of the
// plan-cache study.
type PlanCacheSide struct {
	Executions    int     `json:"executions"`
	Hits          int     `json:"hits"`
	Misses        int     `json:"misses"`
	Invalidations int     `json:"invalidations"`
	DistinctPlans int     `json:"distinct_plans"`
	OptWork       int     `json:"opt_work"`  // candidate costings + guard estimates
	ExecWork      float64 `json:"exec_work"` // simulated work units across all runs
	Reopts        int     `json:"reopts"`    // runtime re-optimizations triggered
	WallNS        int64   `json:"wall_ns"`
}

// PlanCacheResult is the study output (BENCH_plancache.json): parameterized
// TPC-H Q10 swept across quantity bindings, executed through the guarded plan
// cache and through per-execution optimization.
type PlanCacheResult struct {
	Query        string        `json:"query"`
	Sweeps       int           `json:"sweeps"`
	Bindings     int           `json:"bindings_per_sweep"`
	Cached       PlanCacheSide `json:"cached"`
	Reoptimize   PlanCacheSide `json:"reoptimize"`
	HitRate      float64       `json:"hit_rate"`
	OptWorkRatio float64       `json:"opt_work_ratio"`  // reoptimize / cached
	ExecRatio    float64       `json:"exec_work_ratio"` // cached / reoptimize
}

// planCacheBindings returns one sweep of Q10 quantity bindings, 2.5 .. 50.
func planCacheBindings() []float64 {
	var out []float64
	for qty := 2.5; qty <= 50; qty += 2.5 {
		out = append(out, qty)
	}
	return out
}

// PlanCacheStudy sweeps parameterized Q10 over quantity bindings `sweeps`
// times. The cached side runs every execution through one plan cache: the
// first sweep populates it (misses, possibly several range-disjoint plans),
// later sweeps mostly hit. The reoptimize side optimizes every execution from
// scratch with the same parameter-bound estimation, so the comparison
// isolates what the cache saves (optimization work) and what it risks
// (execution work from reusing a guarded plan).
func PlanCacheStudy(cat *catalog.Catalog, sweeps int) (*PlanCacheResult, error) {
	q, err := tpch.Q10Param(cat)
	if err != nil {
		return nil, err
	}
	bindings := planCacheBindings()
	res := &PlanCacheResult{Query: "Q10(l_quantity <= ?0)", Sweeps: sweeps, Bindings: len(bindings)}

	// Cached side: one cache and one runner across the whole sweep.
	cached := plancache.NewRunner(plancache.New(), cat, pop.DefaultOptions())
	start := time.Now()
	for s := 0; s < sweeps; s++ {
		for _, qty := range bindings {
			r, info, err := cached.Run(q, []types.Datum{types.NewFloat(qty)})
			if err != nil {
				return nil, fmt.Errorf("plancache study (cached, qty=%v): %w", qty, err)
			}
			res.Cached.Executions++
			res.Cached.OptWork += info.OptWork
			res.Cached.ExecWork += r.Work
			res.Cached.Reopts += r.Reopts
		}
	}
	res.Cached.WallNS = time.Since(start).Nanoseconds()
	st := cached.Cache.Stats()
	res.Cached.Hits, res.Cached.Misses = st.Hits, st.Misses
	res.Cached.Invalidations = st.Invalidations
	res.Cached.DistinctPlans = st.Plans

	// Reoptimize side: a fresh full optimization per execution, with the same
	// parameter-bound estimation the cache's miss path uses.
	opts := pop.DefaultOptions()
	start = time.Now()
	for s := 0; s < sweeps; s++ {
		for _, qty := range bindings {
			params := []types.Datum{types.NewFloat(qty)}
			opt := optimizer.New(cat)
			opt.ParamBindings = params
			plan, err := opt.Optimize(q)
			if err != nil {
				return nil, fmt.Errorf("plancache study (reoptimize, qty=%v): %w", qty, err)
			}
			o := opts
			o.InitialPlan = plan
			o.BindParamEstimates = true
			r, err := pop.NewRunner(cat, o).Run(q, params)
			if err != nil {
				return nil, fmt.Errorf("plancache study (reoptimize, qty=%v): %w", qty, err)
			}
			res.Reoptimize.Executions++
			res.Reoptimize.OptWork += opt.EnumeratedCandidates
			res.Reoptimize.ExecWork += r.Work
			res.Reoptimize.Reopts += r.Reopts
		}
	}
	res.Reoptimize.WallNS = time.Since(start).Nanoseconds()

	if n := res.Cached.Hits + res.Cached.Misses; n > 0 {
		res.HitRate = float64(res.Cached.Hits) / float64(n)
	}
	if res.Cached.OptWork > 0 {
		res.OptWorkRatio = float64(res.Reoptimize.OptWork) / float64(res.Cached.OptWork)
	}
	if res.Reoptimize.ExecWork > 0 {
		res.ExecRatio = res.Cached.ExecWork / res.Reoptimize.ExecWork
	}
	return res, nil
}

// WritePlanCacheJSON renders the study as indented JSON (BENCH_plancache.json).
func WritePlanCacheJSON(w io.Writer, r *PlanCacheResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WritePlanCache renders the study as a human-readable table.
func WritePlanCache(w io.Writer, r *PlanCacheResult) {
	fmt.Fprintf(w, "Plan-cache study: %s, %d sweeps × %d bindings\n", r.Query, r.Sweeps, r.Bindings)
	fmt.Fprintf(w, "%-12s %6s %6s %6s %6s %7s %12s %14s %8s %10s\n",
		"mode", "execs", "hits", "miss", "inval", "plans", "opt_work", "exec_work", "reopts", "wall_ms")
	row := func(name string, s PlanCacheSide) {
		fmt.Fprintf(w, "%-12s %6d %6d %6d %6d %7d %12d %14.0f %8d %10.1f\n",
			name, s.Executions, s.Hits, s.Misses, s.Invalidations, s.DistinctPlans,
			s.OptWork, s.ExecWork, s.Reopts, float64(s.WallNS)/1e6)
	}
	row("cached", r.Cached)
	row("reoptimize", r.Reoptimize)
	fmt.Fprintf(w, "hit rate %.1f%%, optimization work saved %.1fx, execution work ratio %.3f\n",
		100*r.HitRate, r.OptWorkRatio, r.ExecRatio)
}
