package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dmv"
	"repro/internal/tpch"
)

func tpchCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if err := tpch.Load(cat, tpch.Config{ScaleFactor: 0.002, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestFig11Shape(t *testing.T) {
	cat := tpchCat(t)
	points, err := Fig11(cat, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("points = %d", len(points))
	}
	// Shape claims from the paper:
	// (a) the static default plan degrades sharply at high selectivity;
	// (b) POP stays within a small factor of optimal everywhere;
	// (c) POP beats the static plan substantially at the high end.
	last := points[len(points)-1]
	if last.NoPOPDefault <= last.Optimal*1.5 {
		t.Errorf("static plan should degrade at 100%% selectivity: static=%.0f optimal=%.0f",
			last.NoPOPDefault, last.Optimal)
	}
	for _, p := range points {
		if p.POPDefault > p.Optimal*3 {
			t.Errorf("POP at %.0f%% is %.1fx optimal, want <= 3x (paper: <= 2x)",
				p.SelectivityPct, p.POPDefault/p.Optimal)
		}
	}
	if last.POPDefault*1.5 >= last.NoPOPDefault {
		t.Errorf("POP should clearly beat the static plan at 100%%: POP=%.0f static=%.0f",
			last.POPDefault, last.NoPOPDefault)
	}
	// Paper: the optimal plan changes several times across the sweep.
	if n := DistinctOptimalPlans(points); n < 2 {
		t.Errorf("optimal plan shapes across sweep = %d, want >= 2", n)
	}
	var buf bytes.Buffer
	WriteFig11(&buf, points)
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Error("render missing title")
	}
}

func TestFig12Overhead(t *testing.T) {
	cat := tpchCat(t)
	bars, err := Fig12(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) == 0 {
		t.Fatal("no Figure 12 bars — no checkpoints reached")
	}
	for _, b := range bars {
		if b.Normalized < 0.5 || b.Normalized > 2.5 {
			t.Errorf("%s check %d: normalized %.3f far from 1 — dummy reopt should be cheap",
				b.Query, b.CheckID, b.Normalized)
		}
		if b.Before <= 0 || b.Before >= b.Total {
			t.Errorf("%s check %d: before component %.0f outside (0,%.0f)", b.Query, b.CheckID, b.Before, b.Total)
		}
	}
	var buf bytes.Buffer
	WriteFig12(&buf, bars)
	if !strings.Contains(buf.String(), "Figure 12") {
		t.Error("render missing title")
	}
}

func TestFig13LCEMOverheadSmall(t *testing.T) {
	cat := tpchCat(t)
	rows, err := Fig13(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper: <= ~3%. Allow headroom at tiny scale.
		if r.Overhead > 1.15 {
			t.Errorf("%s: LCEM overhead %.3f too high", r.Query, r.Overhead)
		}
		if r.Overhead < 0.99 {
			t.Errorf("%s: overhead %.3f below 1 — materialization cannot be free", r.Query, r.Overhead)
		}
	}
	var buf bytes.Buffer
	WriteFig13(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Error("render missing title")
	}
}

func TestFig14Opportunities(t *testing.T) {
	cat := tpchCat(t)
	points, err := Fig14(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no opportunities observed")
	}
	flavors := map[string]int{}
	for _, p := range points {
		if p.Start < 0 || p.Start > 1.0001 || p.End < p.Start-1e-9 {
			t.Errorf("%s %s: bad interval [%v,%v]", p.Query, p.Flavor, p.Start, p.End)
		}
		// Flavor carries the placement-site suffix, e.g. "LC (above HJ)".
		flavors[strings.Fields(p.Flavor)[0]]++
	}
	if flavors["LC"] == 0 && flavors["LCEM"] == 0 {
		t.Error("expected lazy-check opportunities")
	}
	var buf bytes.Buffer
	WriteFig14(&buf, points)
	if !strings.Contains(buf.String(), "Figure 14") {
		t.Error("render missing title")
	}
}

func TestDMVStudyShape(t *testing.T) {
	cat := catalog.New()
	if err := dmv.Load(cat, dmv.Config{Scale: 0.15, Seed: 17}); err != nil {
		t.Fatal(err)
	}
	qs, err := dmv.Queries(cat)
	if err != nil {
		t.Fatal(err)
	}
	results, err := DMVStudy(cat, qs[:10]) // subset keeps the test fast
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(results)
	if s.Improved == 0 {
		t.Error("POP should improve at least one correlated DMV query")
	}
	if s.TotalReopts == 0 {
		t.Error("correlated workload should re-optimize at least once")
	}
	var buf bytes.Buffer
	WriteFig15(&buf, results)
	WriteFig16(&buf, results)
	out := buf.String()
	if !strings.Contains(out, "Figure 15") || !strings.Contains(out, "Figure 16") {
		t.Error("render missing titles")
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	want := []string{"LC", "LCEM", "ECB", "ECWC", "ECDC"}
	for i, r := range rows {
		if r.Flavor != want[i] {
			t.Errorf("row %d flavor %s, want %s", i, r.Flavor, want[i])
		}
	}
	var buf bytes.Buffer
	WriteTable1(&buf)
	if !strings.Contains(buf.String(), "BUFCHECK") {
		t.Error("render incomplete")
	}
}
