package harness

// The serving study measures the popserver stack end to end
// (BENCH_server.json). Phase one is the work-identity certificate: with the
// plan cache disabled and parameter-bound estimation on (no mid-stream
// checkpoint violations, so simulated work is independent of the effective
// DOP), every binding executed through the server — admission control,
// worker-pool clamping and the JSON wire round-trip included — must report
// work bit-identical to a single-session library execution. Phase two is the
// load matrix: open-loop (fixed arrival schedule) and closed-loop (think
// time) client fleets at several sizes drive a cache-enabled server with
// zipfian-skewed bindings, reporting latency percentiles, throughput, cache
// hit rate and the scheduler's clamp/wait counters.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/server"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

// serverStudySQL is the wire form of the study's workload: the
// parameterized TPC-H join also used by the plan-cache and batch studies,
// expressed in SQL so it exercises the server's parse path.
const serverStudySQL = `SELECT c_name, SUM(l_extendedprice) AS revenue
	FROM customer, orders, lineitem
	WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_quantity <= ?
	GROUP BY c_name`

// WorkIdentity is the phase-one certificate.
type WorkIdentity struct {
	// Checked counts violation-free bindings whose server and library work
	// totals were compared; Identical counts the exact matches.
	Checked   int `json:"checked"`
	Identical int `json:"identical"`
	// SkippedReopt counts bindings excluded because either side
	// re-optimized (work through a mid-stream violation is not
	// DOP-comparable; see the pop gate tests).
	SkippedReopt int `json:"skipped_reopt"`
	// Clamps is the server's DOP-clamp count during the phase — evidence
	// the identity held through constrained grants, not an idle pool.
	Clamps int64 `json:"dop_clamps"`
}

// ServerRun is one cell of the load matrix.
type ServerRun struct {
	Mode     string `json:"mode"` // "open" or "closed"
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	Errors   int    `json:"errors"`

	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	QPS   float64 `json:"qps"`

	CacheHitRate float64 `json:"cache_hit_rate"`
	Reopts       int     `json:"reopts"`

	WorkerBudget   int   `json:"worker_budget"`
	PeakWorkers    int64 `json:"peak_workers"`
	DOPClamps      int64 `json:"dop_clamps"`
	InlineRuns     int64 `json:"inline_runs"`
	AdmissionWaits int64 `json:"admission_waits"`
	Backpressure   int64 `json:"backpressure"`
}

// ServerStudyResult is the study output (BENCH_server.json).
type ServerStudyResult struct {
	Query        string       `json:"query"`
	Bindings     int          `json:"bindings"`
	WorkerBudget int          `json:"worker_budget"`
	WorkIdentity WorkIdentity `json:"work_identity"`
	Runs         []ServerRun  `json:"runs"`
}

// serverWorkIdentity runs phase one: serial requests against a cache-less,
// estimate-bound server under a deliberately tight worker budget, compared
// binding by binding against the library.
func serverWorkIdentity(cat *catalog.Catalog) (id WorkIdentity, err error) {
	srv := server.New(cat, server.Config{
		Workers:      4,
		DisableCache: true,
		Sched:        server.SchedConfig{WorkerBudget: 2, RunSlots: 4},
		Options:      func(o *pop.Options) { o.BindParamEstimates = true },
	})
	if err := srv.Start(); err != nil {
		return id, err
	}
	defer shutdownServer(srv)
	c, err := server.Dial(srv.Addr())
	if err != nil {
		return id, err
	}
	defer func() {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	q, err := sqlparse.Parse(cat, serverStudySQL)
	if err != nil {
		return id, err
	}
	for _, qty := range planCacheBindings() {
		opts := pop.DefaultOptions()
		opts.Configure = func(o *optimizer.Optimizer) { o.Model.Params.Workers = 4 }
		opts.BindParamEstimates = true
		lib, err := pop.NewRunner(cat, opts).Run(q, []types.Datum{types.NewFloat(qty)})
		if err != nil {
			return id, err
		}
		resp, err := c.Query(serverStudySQL, server.Float(qty))
		if err != nil {
			return id, err
		}
		if !resp.OK {
			return id, fmt.Errorf("identity phase qty=%v: %s (%s)", qty, resp.Error, resp.Code)
		}
		if lib.Reopts > 0 || resp.Reopts > 0 {
			id.SkippedReopt++
			continue
		}
		id.Checked++
		if resp.Work == lib.Work && resp.RowCount == len(lib.Rows) {
			id.Identical++
		}
	}
	id.Clamps = srv.Metrics().DOPClamps
	return id, err
}

// serverLoadRun runs one load-matrix cell against a fresh cache-enabled
// server.
func serverLoadRun(cat *catalog.Catalog, mode string, clients, perClient, budget int) (ServerRun, error) {
	run := ServerRun{Mode: mode, Clients: clients, WorkerBudget: budget}
	srv := server.New(cat, server.Config{
		Workers: 4,
		Sched:   server.SchedConfig{WorkerBudget: budget, SessionQueue: 8},
	})
	if err := srv.Start(); err != nil {
		return run, err
	}
	defer shutdownServer(srv)

	bindings := planCacheBindings()
	type reqResult struct {
		latencyNS int64
		hit       bool
		reopts    int
		err       error
	}
	results := make([][]reqResult, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res := make([]reqResult, 0, perClient)
			defer func() { results[ci] = res }()
			c, err := server.Dial(srv.Addr())
			if err != nil {
				res = append(res, reqResult{err: err})
				return
			}
			defer func() {
				if cerr := c.Close(); cerr != nil {
					res = append(res, reqResult{err: cerr})
				}
			}()
			// Deterministic zipfian skew over the binding set: a few hot
			// bindings dominate (plan-cache hits), a long tail of cold ones
			// keeps misses and guard evaluations in the mix.
			rng := rand.New(rand.NewSource(int64(1000*clients + ci)))
			zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(len(bindings)-1))
			for i := 0; i < perClient; i++ {
				qty := bindings[zipf.Uint64()]
				t0 := time.Now()
				resp, err := c.Query(serverStudySQL, server.Float(qty))
				r := reqResult{latencyNS: time.Since(t0).Nanoseconds()}
				if err != nil {
					r.err = err
					res = append(res, r)
					return
				}
				if !resp.OK {
					r.err = fmt.Errorf("%s: %s", resp.Code, resp.Error)
				} else {
					r.hit = resp.CacheHit
					r.reopts = resp.Reopts
				}
				res = append(res, r)
				switch mode {
				case "closed":
					// Think time: the client pauses between requests, so
					// offered load tracks completion rate.
					time.Sleep(200 * time.Microsecond)
				case "open":
					// Fixed arrival schedule: request i+1 is due at its slot
					// regardless of how long request i took (modulo the
					// single connection); sleep only the remaining budget.
					due := t0.Add(500 * time.Microsecond)
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start)

	var lat []int64
	hits := 0
	for _, res := range results {
		for _, r := range res {
			if r.err != nil {
				run.Errors++
				continue
			}
			run.Requests++
			lat = append(lat, r.latencyNS)
			if r.hit {
				hits++
			}
			run.Reopts += r.reopts
		}
	}
	if run.Requests > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		run.P50MS = float64(lat[len(lat)/2]) / 1e6
		run.P99MS = float64(lat[len(lat)*99/100]) / 1e6
		run.QPS = float64(run.Requests) / wall.Seconds()
		run.CacheHitRate = float64(hits) / float64(run.Requests)
	}
	st := srv.Scheduler().Stats()
	run.PeakWorkers = st.PeakWorkers
	run.DOPClamps = st.DOPClamps
	run.InlineRuns = st.InlineRuns
	run.AdmissionWaits = st.AdmissionWaits
	run.Backpressure = st.Backpressure
	return run, nil
}

// shutdownServer drains a study server with a generous deadline.
func shutdownServer(srv *server.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Printf("server study: shutdown: %v\n", err)
	}
}

// ServerStudy runs both phases. Smoke mode shrinks the load matrix for CI.
func ServerStudy(cat *catalog.Catalog, smoke bool) (*ServerStudyResult, error) {
	// Floor the budget at 4 so the matrix exercises real intra-query
	// parallelism arbitration even on small CI hosts (exchange workers
	// simulate work; they are not CPU-bound).
	budget := runtime.GOMAXPROCS(0)
	if budget < 4 {
		budget = 4
	}
	res := &ServerStudyResult{
		Query:        "Q10-join(l_quantity <= ?0) over SQL",
		Bindings:     len(planCacheBindings()),
		WorkerBudget: budget,
	}
	id, err := serverWorkIdentity(cat)
	if err != nil {
		return nil, err
	}
	res.WorkIdentity = id

	clientCounts := []int{4, 16}
	perClient := 40
	if smoke {
		clientCounts = []int{2}
		perClient = 8
	}
	for _, clients := range clientCounts {
		for _, mode := range []string{"open", "closed"} {
			run, err := serverLoadRun(cat, mode, clients, perClient, budget)
			if err != nil {
				return nil, err
			}
			res.Runs = append(res.Runs, run)
		}
	}
	return res, nil
}

// WriteServerJSON renders the study as indented JSON.
func WriteServerJSON(w io.Writer, r *ServerStudyResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteServer renders the study as a human-readable table.
func WriteServer(w io.Writer, r *ServerStudyResult) {
	fmt.Fprintf(w, "Serving study: %s, %d bindings, worker budget %d\n",
		r.Query, r.Bindings, r.WorkerBudget)
	fmt.Fprintf(w, "work identity: %d/%d bindings bit-identical (%d skipped for reopts, %d clamps during phase)\n",
		r.WorkIdentity.Identical, r.WorkIdentity.Checked,
		r.WorkIdentity.SkippedReopt, r.WorkIdentity.Clamps)
	fmt.Fprintf(w, "%-7s %8s %6s %5s %9s %9s %9s %8s %7s %7s %7s %7s\n",
		"mode", "clients", "reqs", "errs", "p50_ms", "p99_ms", "qps", "hitrate", "peak", "clamps", "waits", "reopts")
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%-7s %8d %6d %5d %9.2f %9.2f %9.0f %8.3f %7d %7d %7d %7d\n",
			run.Mode, run.Clients, run.Requests, run.Errors,
			run.P50MS, run.P99MS, run.QPS, run.CacheHitRate,
			run.PeakWorkers, run.DOPClamps, run.AdmissionWaits, run.Reopts)
	}
}
