// Package types defines Datum, the dynamically typed scalar value that flows
// through every operator of the engine, together with comparison, hashing and
// formatting primitives. Datum is a small value type: copying it is cheap and
// rows are plain []Datum slices.
package types

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the scalar types supported by the engine.
type Kind uint8

// The supported datum kinds. KindNull is the kind of the SQL NULL value,
// which compares as unknown and hashes to a fixed sentinel.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind participate in arithmetic and
// numeric comparison coercion.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat || k == KindDate }

// Datum is a single scalar value. The zero value is NULL.
type Datum struct {
	kind Kind
	i    int64 // int, bool (0/1), date (days since 1970-01-01)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Datum{}

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{kind: KindInt, i: v} }

// NewFloat returns a double-precision datum.
func NewFloat(v float64) Datum { return Datum{kind: KindFloat, f: v} }

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{kind: KindString, s: v} }

// NewBool returns a boolean datum.
func NewBool(v bool) Datum {
	var i int64
	if v {
		i = 1
	}
	return Datum{kind: KindBool, i: i}
}

// NewDate returns a date datum holding the given number of days since the
// Unix epoch.
func NewDate(days int64) Datum { return Datum{kind: KindDate, i: days} }

// MakeDate returns a date datum for the given calendar day.
func MakeDate(year int, month time.Month, day int) Datum {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return NewDate(int64(t.Unix() / 86400))
}

// Kind returns the datum's kind.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.kind == KindNull }

// Int returns the integer value. It panics if the datum is not an integer,
// boolean or date; use Kind to check first.
func (d Datum) Int() int64 {
	switch d.kind {
	case KindInt, KindBool, KindDate:
		return d.i
	default:
		panic(fmt.Sprintf("types: Int() on %s datum", d.kind))
	}
}

// Float returns the value as a float64, coercing integers and dates.
func (d Datum) Float() float64 {
	switch d.kind {
	case KindFloat:
		return d.f
	case KindInt, KindBool, KindDate:
		return float64(d.i)
	default:
		panic(fmt.Sprintf("types: Float() on %s datum", d.kind))
	}
}

// Str returns the string value. It panics for non-string datums.
func (d Datum) Str() string {
	if d.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s datum", d.kind))
	}
	return d.s
}

// Bool returns the boolean value. It panics for non-boolean datums.
func (d Datum) Bool() bool {
	if d.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s datum", d.kind))
	}
	return d.i != 0
}

// Days returns the number of days since the Unix epoch for a date datum.
func (d Datum) Days() int64 {
	if d.kind != KindDate {
		panic(fmt.Sprintf("types: Days() on %s datum", d.kind))
	}
	return d.i
}

// ErrIncomparable is returned by Compare when two datums cannot be ordered.
type ErrIncomparable struct{ A, B Kind }

func (e *ErrIncomparable) Error() string {
	return fmt.Sprintf("types: cannot compare %s with %s", e.A, e.B)
}

// Compare orders two non-NULL datums, returning -1, 0 or +1. Integers,
// floats and dates compare numerically across kinds; strings compare
// lexicographically; booleans order false < true. Comparing a NULL or
// incompatible kinds returns an error — SQL three-valued logic is handled a
// level up, in package expr.
func (d Datum) Compare(o Datum) (int, error) {
	if d.kind == KindNull || o.kind == KindNull {
		return 0, &ErrIncomparable{d.kind, o.kind}
	}
	if d.kind.Numeric() && o.kind.Numeric() {
		// Fast path: same-kind integers avoid float rounding.
		if d.kind != KindFloat && o.kind != KindFloat {
			return cmpInt(d.i, o.i), nil
		}
		return cmpFloat(d.Float(), o.Float()), nil
	}
	if d.kind != o.kind {
		return 0, &ErrIncomparable{d.kind, o.kind}
	}
	switch d.kind {
	case KindString:
		switch {
		case d.s < o.s:
			return -1, nil
		case d.s > o.s:
			return 1, nil
		}
		return 0, nil
	case KindBool:
		return cmpInt(d.i, o.i), nil
	default:
		return 0, &ErrIncomparable{d.kind, o.kind}
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// MustCompare is Compare for callers that have already verified
// comparability; it panics on error.
func (d Datum) MustCompare(o Datum) int {
	c, err := d.Compare(o)
	if err != nil {
		panic(err)
	}
	return c
}

// Equal reports whether two datums are identical values (same kind, same
// value). Unlike Compare, NULL equals NULL here; Equal is identity for
// grouping/hashing, not SQL equality.
func (d Datum) Equal(o Datum) bool {
	if d.kind != o.kind {
		// Int/float/date cross-kind numeric identity is intentionally not
		// collapsed: grouping treats 1 and 1.0 as distinct keys, matching
		// their distinct hash values.
		return false
	}
	switch d.kind {
	case KindNull:
		return true
	case KindString:
		return d.s == o.s
	case KindFloat:
		return d.f == o.f || (math.IsNaN(d.f) && math.IsNaN(o.f))
	default:
		return d.i == o.i
	}
}

// FNV-64a parameters, mirrored from hash/fnv so HashFold produces exactly
// the stream HashInto would feed through an fnv.New64a writer.
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

// HashSeed is the initial state of a HashFold chain: the FNV-64a offset
// basis. Folding datums into it yields exactly the value HashInto produces
// through hash/fnv, without the hash.Hash64 interface allocation.
const HashSeed uint64 = fnv64Offset

// Hash returns a 64-bit hash of the datum, suitable for hash joins and
// aggregation. NULLs hash to a fixed sentinel so they can be grouped.
func (d Datum) Hash() uint64 {
	return d.HashFold(HashSeed)
}

// HashFold mixes the datum into a running FNV-64a state and returns the new
// state. It is the allocation-free form of HashInto: for any datum,
// HashFold over a state equals writing HashInto's byte stream into an
// fnv.New64a hasher holding that state. The executor's hash joins and
// aggregations hash composite keys by chaining HashFold from HashSeed.
func (d Datum) HashFold(h uint64) uint64 {
	h = (h ^ uint64(byte(d.kind))) * fnv64Prime
	switch d.kind {
	case KindNull:
	case KindString:
		for i := 0; i < len(d.s); i++ {
			h = (h ^ uint64(d.s[i])) * fnv64Prime
		}
	case KindFloat:
		h = fnvFoldUint64(h, math.Float64bits(d.f))
	default:
		h = fnvFoldUint64(h, uint64(d.i))
	}
	return h
}

// fnvFoldUint64 folds the little-endian bytes of v into an FNV-64a state,
// matching putUint64's byte order.
func fnvFoldUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(v>>(8*uint(i))))) * fnv64Prime
	}
	return h
}

// hashWriter is the subset of hash.Hash64 HashInto needs.
type hashWriter interface {
	Write(p []byte) (int, error)
}

// HashInto mixes the datum into an existing hash state, enabling composite
// key hashing without intermediate allocation.
func (d Datum) HashInto(h hashWriter) {
	var buf [9]byte
	buf[0] = byte(d.kind)
	switch d.kind {
	case KindNull:
		h.Write(buf[:1])
	case KindString:
		h.Write(buf[:1])
		h.Write([]byte(d.s))
	case KindFloat:
		bits := math.Float64bits(d.f)
		putUint64(buf[1:], bits)
		h.Write(buf[:])
	default:
		putUint64(buf[1:], uint64(d.i))
		h.Write(buf[:])
	}
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

// String renders the datum for display and plan text.
func (d Datum) String() string {
	switch d.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if d.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(d.i, 10)
	case KindFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KindString:
		return "'" + d.s + "'"
	case KindDate:
		t := time.Unix(d.i*86400, 0).UTC()
		return t.Format("2006-01-02")
	default:
		return fmt.Sprintf("Datum(kind=%d)", d.kind)
	}
}

// SortValue returns a float64 that preserves the ordering of comparable
// datums of a numeric kind; histogram construction uses it to compute bucket
// boundaries. For strings it returns a prefix-based projection that preserves
// order only approximately (sufficient for selectivity interpolation).
func (d Datum) SortValue() float64 {
	switch d.kind {
	case KindInt, KindBool, KindDate:
		return float64(d.i)
	case KindFloat:
		return d.f
	case KindString:
		// Project the first 8 bytes onto a float: order-preserving for the
		// prefix, adequate for interpolation within histogram buckets.
		var v float64
		scale := 1.0
		for i := 0; i < 8 && i < len(d.s); i++ {
			scale /= 256.0
			v += float64(d.s[i]) * scale
		}
		return v
	default:
		return 0
	}
}
