package types

import (
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindBool:   "BOOLEAN",
		KindInt:    "INTEGER",
		KindFloat:  "DOUBLE",
		KindString: "VARCHAR",
		KindDate:   "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var d Datum
	if !d.IsNull() {
		t.Fatal("zero Datum should be NULL")
	}
	if d.Kind() != KindNull {
		t.Fatalf("zero Datum kind = %v", d.Kind())
	}
	if !Null.IsNull() {
		t.Fatal("Null should be NULL")
	}
}

func TestAccessors(t *testing.T) {
	if NewInt(42).Int() != 42 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewString("abc").Str() != "abc" {
		t.Error("Str accessor")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool accessor")
	}
	if NewDate(100).Days() != 100 {
		t.Error("Days accessor")
	}
	if NewInt(7).Float() != 7.0 {
		t.Error("int->float coercion")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Str on int", func() { NewInt(1).Str() })
	mustPanic("Bool on int", func() { NewInt(1).Bool() })
	mustPanic("Days on int", func() { NewInt(1).Days() })
	mustPanic("Float on string", func() { NewString("x").Float() })
}

func TestCompareNumeric(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewFloat(1.5), NewFloat(0.5), 1},
		{NewDate(10), NewDate(20), -1},
		{NewDate(10), NewInt(10), 0},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareStrings(t *testing.T) {
	a, b := NewString("apple"), NewString("banana")
	if c, _ := a.Compare(b); c != -1 {
		t.Error("apple < banana expected")
	}
	if c, _ := b.Compare(a); c != 1 {
		t.Error("banana > apple expected")
	}
	if c, _ := a.Compare(a); c != 0 {
		t.Error("apple == apple expected")
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Null.Compare(NewInt(1)); err == nil {
		t.Error("NULL compare should fail")
	}
	if _, err := NewInt(1).Compare(Null); err == nil {
		t.Error("compare to NULL should fail")
	}
	if _, err := NewString("a").Compare(NewInt(1)); err == nil {
		t.Error("string vs int should fail")
	}
	if _, err := NewBool(true).Compare(NewString("a")); err == nil {
		t.Error("bool vs string should fail")
	}
	var e *ErrIncomparable
	_, err := NewString("a").Compare(NewInt(1))
	if e2, ok := err.(*ErrIncomparable); !ok {
		t.Errorf("want *ErrIncomparable, got %T", err)
	} else {
		e = e2
	}
	if e != nil && e.Error() == "" {
		t.Error("empty error text")
	}
}

func TestMustComparePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompare on NULL should panic")
		}
	}()
	Null.MustCompare(NewInt(1))
}

func TestEqual(t *testing.T) {
	if !NewInt(5).Equal(NewInt(5)) {
		t.Error("5 == 5")
	}
	if NewInt(5).Equal(NewInt(6)) {
		t.Error("5 != 6")
	}
	if NewInt(1).Equal(NewFloat(1)) {
		t.Error("cross-kind identity must be false")
	}
	if !Null.Equal(Null) {
		t.Error("NULL identity-equals NULL for grouping")
	}
	if !NewString("x").Equal(NewString("x")) {
		t.Error("string equality")
	}
	nan := NewFloat(math.NaN())
	if !nan.Equal(nan) {
		t.Error("NaN identity-equals NaN for grouping")
	}
}

func TestHashConsistency(t *testing.T) {
	// Equal values must hash equal.
	pairs := [][2]Datum{
		{NewInt(42), NewInt(42)},
		{NewString("hello"), NewString("hello")},
		{NewFloat(3.14), NewFloat(3.14)},
		{Null, Null},
		{NewDate(9000), NewDate(9000)},
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("hash mismatch for equal datums %v", p[0])
		}
	}
	// Different kinds with same payload should (almost surely) differ.
	if NewInt(1).Hash() == NewBool(true).Hash() {
		t.Error("int 1 and bool true should hash differently")
	}
	if NewInt(100).Hash() == NewDate(100).Hash() {
		t.Error("int and date with same payload should hash differently")
	}
}

func TestHashInto(t *testing.T) {
	h1 := fnv.New64a()
	NewInt(1).HashInto(h1)
	NewString("a").HashInto(h1)
	h2 := fnv.New64a()
	NewInt(1).HashInto(h2)
	NewString("a").HashInto(h2)
	if h1.Sum64() != h2.Sum64() {
		t.Error("composite hash not deterministic")
	}
	h3 := fnv.New64a()
	NewString("a").HashInto(h3)
	NewInt(1).HashInto(h3)
	if h1.Sum64() == h3.Sum64() {
		t.Error("composite hash should be order sensitive")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "'hi'"},
		{MakeDate(1998, time.September, 2), "1998-09-02"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestMakeDateRoundTrip(t *testing.T) {
	d := MakeDate(2004, time.June, 13)
	t2 := time.Unix(d.Days()*86400, 0).UTC()
	if t2.Year() != 2004 || t2.Month() != time.June || t2.Day() != 13 {
		t.Errorf("round trip failed: %v", t2)
	}
}

func TestSortValueOrderPreserving(t *testing.T) {
	if NewInt(1).SortValue() >= NewInt(2).SortValue() {
		t.Error("int sort values out of order")
	}
	if NewString("aa").SortValue() >= NewString("ab").SortValue() {
		t.Error("string sort values out of order")
	}
	if Null.SortValue() != 0 {
		t.Error("null sort value should be 0")
	}
}

// Property: Compare is antisymmetric and transitive over random ints.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		da, db := NewInt(a), NewInt(b)
		c1, _ := da.Compare(db)
		c2, _ := db.Compare(da)
		return c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal datums hash equal for random strings.
func TestHashEqualProperty(t *testing.T) {
	f := func(s string) bool {
		return NewString(s).Hash() == NewString(s).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SortValue preserves <= for random int64 pairs.
func TestSortValuePreservesOrderProperty(t *testing.T) {
	f := func(a, b int32) bool {
		da, db := NewInt(int64(a)), NewInt(int64(b))
		c, _ := da.Compare(db)
		switch c {
		case -1:
			return da.SortValue() < db.SortValue()
		case 1:
			return da.SortValue() > db.SortValue()
		default:
			return da.SortValue() == db.SortValue()
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
