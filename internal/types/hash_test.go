package types

import (
	"hash/fnv"
	"testing"
)

// TestHashFoldMatchesFNV pins HashFold to the reference it replaces: for any
// datum sequence, chaining HashFold from HashSeed must produce exactly the
// value of writing HashInto's byte stream through hash/fnv's New64a. Hash
// values feed no persisted state, but keeping them identical keeps hash-table
// iteration-independent invariants easy to audit across the change.
func TestHashFoldMatchesFNV(t *testing.T) {
	datums := []Datum{
		Null,
		NewBool(false),
		NewBool(true),
		NewInt(0),
		NewInt(42),
		NewInt(-1),
		NewInt(1<<62 + 12345),
		NewFloat(0),
		NewFloat(3.14159),
		NewFloat(-2.5e300),
		NewString(""),
		NewString("a"),
		NewString("hello, world"),
		MakeDate(2004, 6, 17),
		NewDate(-400),
	}
	for _, d := range datums {
		h := fnv.New64a()
		d.HashInto(h)
		if got, want := d.Hash(), h.Sum64(); got != want {
			t.Errorf("%s: Hash() = %#x, want fnv %#x", d, got, want)
		}
	}

	// Composite chains, as hash joins and aggregation use them.
	for i := 0; i < len(datums); i++ {
		for j := 0; j < len(datums); j++ {
			h := fnv.New64a()
			datums[i].HashInto(h)
			datums[j].HashInto(h)
			want := h.Sum64()
			got := datums[j].HashFold(datums[i].HashFold(HashSeed))
			if got != want {
				t.Errorf("chain [%s %s]: HashFold = %#x, want %#x", datums[i], datums[j], got, want)
			}
		}
	}
}
