package schema

import (
	"testing"

	"repro/internal/types"
)

func testSchema() *Schema {
	return New(
		Column{Name: "id", Type: types.KindInt},
		Column{Name: "name", Type: types.KindString},
		Column{Name: "score", Type: types.KindFloat, Nullable: true},
	)
}

func TestOrdinal(t *testing.T) {
	s := testSchema()
	if s.Ordinal("id") != 0 || s.Ordinal("name") != 1 || s.Ordinal("score") != 2 {
		t.Error("ordinal lookup failed")
	}
	if s.Ordinal("NAME") != 1 {
		t.Error("ordinal lookup should be case-insensitive")
	}
	if s.Ordinal("missing") != -1 {
		t.Error("missing column should return -1")
	}
}

func TestLenAndCol(t *testing.T) {
	s := testSchema()
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Col(1).Name != "name" {
		t.Error("Col(1) wrong")
	}
}

func TestRowWidth(t *testing.T) {
	s := testSchema()
	// 8 (int) + 16 (string) + 8 (float)
	if w := s.RowWidth(); w != 32 {
		t.Errorf("RowWidth = %d, want 32", w)
	}
	custom := New(Column{Name: "c", Type: types.KindString, Width: 100})
	if w := custom.RowWidth(); w != 100 {
		t.Errorf("custom width = %d, want 100", w)
	}
	empty := New()
	if empty.RowWidth() <= 0 {
		t.Error("empty schema must have positive width")
	}
}

func TestDefaultWidths(t *testing.T) {
	cases := map[types.Kind]int{
		types.KindBool:   1,
		types.KindInt:    8,
		types.KindFloat:  8,
		types.KindDate:   8,
		types.KindString: 16,
	}
	for k, want := range cases {
		c := Column{Name: "x", Type: k}
		if got := c.DefaultWidth(); got != want {
			t.Errorf("width(%v) = %d, want %d", k, got, want)
		}
	}
}

func TestConcat(t *testing.T) {
	a := New(Column{Name: "a", Type: types.KindInt})
	b := New(Column{Name: "b", Type: types.KindString})
	c := a.Concat(b)
	if c.Len() != 2 || c.Col(0).Name != "a" || c.Col(1).Name != "b" {
		t.Error("schema concat wrong")
	}
	// Originals untouched.
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("concat mutated inputs")
	}
}

func TestProject(t *testing.T) {
	s := testSchema()
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Col(0).Name != "score" || p.Col(1).Name != "id" {
		t.Error("projection wrong")
	}
}

func TestSchemaString(t *testing.T) {
	s := New(Column{Name: "a", Type: types.KindInt}, Column{Name: "b", Type: types.KindString})
	want := "(a INTEGER, b VARCHAR)"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{types.NewInt(1), types.NewString("x")}
	c := r.Clone()
	c[0] = types.NewInt(99)
	if r[0].Int() != 1 {
		t.Error("clone aliases original")
	}
}

func TestRowConcat(t *testing.T) {
	a := Row{types.NewInt(1)}
	b := Row{types.NewString("x"), types.Null}
	c := a.Concat(b)
	if len(c) != 3 || c[0].Int() != 1 || c[1].Str() != "x" || !c[2].IsNull() {
		t.Errorf("concat = %v", c)
	}
}

func TestRowString(t *testing.T) {
	r := Row{types.NewInt(1), types.NewString("x"), types.Null}
	if got := r.String(); got != "[1, 'x', NULL]" {
		t.Errorf("Row.String = %q", got)
	}
}
