// Package schema defines table schemas, rows and row identifiers shared by
// the storage layer, the optimizer and the executor.
package schema

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Column describes one attribute of a relation.
type Column struct {
	Name     string
	Type     types.Kind
	Nullable bool
	// Width is the average encoded width in bytes, used by the cost model to
	// charge for tuple movement and materialization. Zero means "use the
	// default width for the type".
	Width int
}

// DefaultWidth returns the column's width estimate in bytes.
func (c Column) DefaultWidth() int {
	if c.Width > 0 {
		return c.Width
	}
	switch c.Type {
	case types.KindBool:
		return 1
	case types.KindInt, types.KindFloat, types.KindDate:
		return 8
	case types.KindString:
		return 16
	default:
		return 8
	}
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// New builds a schema from columns.
func New(cols ...Column) *Schema { return &Schema{Columns: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Ordinal returns the position of the named column, or -1.
func (s *Schema) Ordinal(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Col returns the column at ordinal i.
func (s *Schema) Col(i int) Column { return s.Columns[i] }

// RowWidth returns the estimated row width in bytes.
func (s *Schema) RowWidth() int {
	w := 0
	for _, c := range s.Columns {
		w += c.DefaultWidth()
	}
	if w == 0 {
		w = 8
	}
	return w
}

// Concat returns a schema holding this schema's columns followed by o's,
// as produced by a join.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := make([]Column, 0, len(s.Columns)+len(o.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, o.Columns...)
	return &Schema{Columns: cols}
}

// Project returns a schema containing only the columns at the given ordinals.
func (s *Schema) Project(ords []int) *Schema {
	cols := make([]Column, len(ords))
	for i, o := range ords {
		cols[i] = s.Columns[o]
	}
	return &Schema{Columns: cols}
}

// String renders the schema as "(a INTEGER, b VARCHAR)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple of datums laid out in schema order.
type Row []types.Datum

// Clone returns a copy of the row that does not alias the original's backing
// array. Datum values themselves are immutable, so a shallow element copy
// suffices.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Concat returns a new row holding r's datums followed by o's.
func (r Row) Concat(o Row) Row {
	c := make(Row, 0, len(r)+len(o))
	c = append(c, r...)
	c = append(c, o...)
	return c
}

// String renders the row as "[1, 'x', NULL]".
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, d := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.String())
	}
	b.WriteByte(']')
	return b.String()
}

// RID identifies a row within its table: the table id in the high 24 bits is
// unnecessary for this in-memory engine, so RID is simply the slot index in
// the heap. RIDs are what ECDC's deferred-compensation side table stores.
type RID int64

// InvalidRID is the RID of no row.
const InvalidRID RID = -1
