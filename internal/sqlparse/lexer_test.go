package sqlparse

import (
	"strings"
	"testing"
)

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func texts(toks []token) []string {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.kind != tokEOF {
			out = append(out, t.text)
		}
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a.b, 42, 3.14 FROM t WHERE x <= 'it''s' AND y <> ?")
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	want := []string{"select", "a", ".", "b", ",", "42", ",", "3.14", "from", "t",
		"where", "x", "<=", "it's", "and", "y", "<>", "?"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lex("< <= > >= = <> != ( ) + - * / ;")
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	want := []string{"<", "<=", ">", ">=", "=", "<>", "<>", "(", ")", "+", "-", "*", "/", ";"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLexCaseFolding(t *testing.T) {
	toks, err := lex("SeLeCt FrOm WhErE MyCol")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:4] {
		if tok.text != strings.ToLower(tok.text) {
			t.Errorf("identifier %q not lowercased", tok.text)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := lex("'' 'plain' 'two''quotes'''")
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	want := []string{"", "plain", "two'quotes'"}
	for i := range want {
		if toks[i].kind != tokString || got[i] != want[i] {
			t.Errorf("string %d = %q (kind %d), want %q", i, got[i], toks[i].kind, want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("0 007 1.5 2.")
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	want := []string{"0", "007", "1.5", "2."}
	for i := range want {
		if toks[i].kind != tokNumber || got[i] != want[i] {
			t.Errorf("number %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a @ b", "x ! y", "`backtick`"} {
		if _, err := lex(src); err == nil {
			t.Errorf("expected lex error for %q", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lex("ab  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos != 0 || toks[1].pos != 4 {
		t.Errorf("positions = %d, %d", toks[0].pos, toks[1].pos)
	}
	if toks[0].String() != "ab" {
		t.Errorf("token String = %q", toks[0].String())
	}
	eof := toks[len(toks)-1]
	if eof.String() != "<eof>" {
		t.Errorf("EOF String = %q", eof.String())
	}
	str, _ := lex("'s'")
	if str[0].String() != "'s'" {
		t.Errorf("string token String = %q", str[0].String())
	}
}

func TestLexKindsSanity(t *testing.T) {
	toks, _ := lex("a 1 'x' ?")
	want := []tokenKind{tokIdent, tokNumber, tokString, tokPunct, tokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("kind %d = %d, want %d", i, got[i], want[i])
		}
	}
}
