package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/optimizer"
	"repro/internal/schema"
	"repro/internal/types"
)

func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	users, err := c.CreateTable("users", schema.New(
		schema.Column{Name: "u_id", Type: types.KindInt},
		schema.Column{Name: "u_name", Type: types.KindString},
		schema.Column{Name: "u_age", Type: types.KindInt},
		schema.Column{Name: "u_joined", Type: types.KindDate},
	))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ann", "bob", "carla", "dave", "erin", "frank"}
	for i := 0; i < 120; i++ {
		users.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(names[i%len(names)]),
			types.NewInt(int64(20 + i%40)),
			types.MakeDate(2000+i%5, 1, 1),
		})
	}
	msgs, err := c.CreateTable("msgs", schema.New(
		schema.Column{Name: "m_id", Type: types.KindInt},
		schema.Column{Name: "m_user", Type: types.KindInt},
		schema.Column{Name: "m_len", Type: types.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		msgs.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 120)),
			types.NewInt(int64(i % 50)),
		})
	}
	if _, err := c.CreateBTreeIndex("users_pk", "users", "u_id"); err != nil {
		t.Fatal(err)
	}
	if err := c.AnalyzeAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

func run(t *testing.T, cat *catalog.Catalog, sql string, params ...types.Datum) []schema.Row {
	t.Helper()
	q, err := Parse(cat, sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatalf("optimize %q: %v", sql, err)
	}
	ex, err := executor.NewExecutor(cat, q, params, opt.Model.Params, &executor.Meter{})
	if err != nil {
		t.Fatal(err)
	}
	root, err := ex.Build(plan)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := executor.Run(root)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return rows
}

func TestSimpleSelect(t *testing.T) {
	cat := testCatalog(t)
	rows := run(t, cat, "SELECT u_id FROM users WHERE u_id < 5")
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestQualifiedAndBareColumns(t *testing.T) {
	cat := testCatalog(t)
	rows := run(t, cat, "SELECT u.u_name FROM users u WHERE u.u_id = 3")
	if len(rows) != 1 || rows[0][0].Str() != "dave" {
		t.Fatalf("rows = %v", rows)
	}
	// Bare unique column.
	rows = run(t, cat, "SELECT u_name FROM users WHERE u_id = 3")
	if len(rows) != 1 {
		t.Fatal("bare column resolution failed")
	}
}

func TestJoinQuery(t *testing.T) {
	cat := testCatalog(t)
	rows := run(t, cat, `SELECT u.u_name, m.m_len FROM users u, msgs m
		WHERE u.u_id = m.m_user AND m.m_id < 10`)
	if len(rows) != 10 {
		t.Fatalf("join returned %d rows", len(rows))
	}
}

func TestAggregatesAndGrouping(t *testing.T) {
	cat := testCatalog(t)
	rows := run(t, cat, `SELECT u_name, COUNT(*) AS n, SUM(u_age) AS total, AVG(u_age) AS a,
		MIN(u_age) AS lo, MAX(u_age) AS hi
		FROM users GROUP BY u_name ORDER BY u_name`)
	if len(rows) != 6 {
		t.Fatalf("groups = %d", len(rows))
	}
	var total int64
	prev := ""
	for _, r := range rows {
		if r[0].Str() < prev {
			t.Error("not ordered")
		}
		prev = r[0].Str()
		total += r[1].Int()
	}
	if total != 120 {
		t.Errorf("counts sum to %d", total)
	}
}

func TestOrderByDescLimit(t *testing.T) {
	cat := testCatalog(t)
	rows := run(t, cat, "SELECT u_id FROM users ORDER BY u_id DESC LIMIT 3")
	if len(rows) != 3 || rows[0][0].Int() != 119 || rows[2][0].Int() != 117 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPredicatesVariety(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT u_id FROM users WHERE u_name LIKE 'a%'", 20},
		{"SELECT u_id FROM users WHERE u_name NOT LIKE 'a%'", 100},
		{"SELECT u_id FROM users WHERE u_id IN (1, 2, 3)", 3},
		{"SELECT u_id FROM users WHERE u_id NOT IN (1, 2, 3) AND u_id < 10", 7},
		{"SELECT u_id FROM users WHERE u_id BETWEEN 10 AND 19", 10},
		{"SELECT u_id FROM users WHERE u_id NOT BETWEEN 10 AND 119", 10},
		{"SELECT u_id FROM users WHERE u_id < 10 OR u_id >= 115", 15},
		{"SELECT u_id FROM users WHERE NOT (u_id < 110)", 10},
		{"SELECT u_id FROM users WHERE u_name IS NULL", 0},
		{"SELECT u_id FROM users WHERE u_name IS NOT NULL AND u_id < 4", 4},
		{"SELECT u_id FROM users WHERE u_id <> 0 AND u_id <= 5", 5},
		{"SELECT u_id FROM users WHERE u_id != 0 AND u_id <= 5", 5},
		{"SELECT u_id FROM users WHERE u_joined < DATE '2001-06-15'", 48},
		{"SELECT u_id FROM users WHERE u_id * 2 = 10", 1},
		{"SELECT u_id FROM users WHERE u_id + 1 = 10", 1},
		{"SELECT u_id FROM users WHERE u_id - 1 = -1 + 10", 1},
		{"SELECT u_id FROM users WHERE u_id / 2 = 2.5", 1},
	}
	for _, c := range cases {
		rows := run(t, cat, c.sql)
		if len(rows) != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, len(rows), c.want)
		}
	}
}

func TestParameterMarkers(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat, "SELECT u_id FROM users WHERE u_id < ? AND u_age >= ?")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumParams != 2 {
		t.Fatalf("NumParams = %d", q.NumParams)
	}
	rows := run(t, cat, "SELECT u_id FROM users WHERE u_id < ?", types.NewInt(7))
	if len(rows) != 7 {
		t.Fatalf("param query returned %d rows", len(rows))
	}
}

func TestStringEscapes(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(cat, "SELECT u_id FROM users WHERE u_name = 'o''brien'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "o'brien") {
		t.Errorf("escaped string lost: %s", q.String())
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"",
		"SELECT",
		"SELECT u_id",
		"SELECT u_id FROM",
		"SELECT u_id FROM nope",
		"SELECT nope FROM users",
		"SELECT u_id FROM users WHERE",
		"SELECT u_id FROM users WHERE u_id <",
		"SELECT u_id FROM users WHERE u_id LIKE 5",
		"SELECT u_id FROM users WHERE u_id IN ()",
		"SELECT u_id FROM users WHERE u_id BETWEEN 1",
		"SELECT u_id FROM users LIMIT x",
		"SELECT u_id FROM users trailing garbage",
		"SELECT u_id FROM users u, msgs m WHERE m_id = 1 AND u_id = 1 AND id < 5", // unknown bare col
		"SELECT m_id FROM users u, msgs m WHERE u_id = m_user GROUP BY",
		"SELECT u_id FROM users WHERE u_name = 'unterminated",
		"SELECT u_id FROM users WHERE u_id @ 5",
		"SELECT u_id FROM users WHERE u_joined < DATE 'feb-1-99'",
		"SELECT COUNT( FROM users",
	}
	for _, sql := range bad {
		if _, err := Parse(cat, sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestAmbiguousBareColumn(t *testing.T) {
	c := catalog.New()
	sch := schema.New(schema.Column{Name: "id", Type: types.KindInt})
	if _, err := c.CreateTable("a", sch); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("b", sch); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(c, "SELECT id FROM a, b"); err == nil {
		t.Error("ambiguous column should error")
	}
}

func TestCountColumn(t *testing.T) {
	cat := testCatalog(t)
	rows := run(t, cat, "SELECT COUNT(u_id) FROM users WHERE u_id < 30")
	if len(rows) != 1 || rows[0][0].Int() != 30 {
		t.Fatalf("COUNT(col) = %v", rows)
	}
}

func TestNegativeNumbersAndNullLiteral(t *testing.T) {
	cat := testCatalog(t)
	rows := run(t, cat, "SELECT u_id FROM users WHERE u_id > -1 AND u_id < 2")
	if len(rows) != 2 {
		t.Fatalf("negative literal: %d rows", len(rows))
	}
	rows = run(t, cat, "SELECT u_id FROM users WHERE u_name = NULL")
	if len(rows) != 0 {
		t.Error("= NULL must match nothing")
	}
}

func TestSelectDistinct(t *testing.T) {
	cat := testCatalog(t)
	rows := run(t, cat, "SELECT DISTINCT u_name FROM users")
	if len(rows) != 6 {
		t.Fatalf("distinct names = %d, want 6", len(rows))
	}
	rows = run(t, cat, "SELECT DISTINCT u_name FROM users ORDER BY u_name DESC LIMIT 2")
	if len(rows) != 2 || rows[0][0].Str() != "frank" {
		t.Fatalf("distinct+order+limit = %v", rows)
	}
	// DISTINCT over a join.
	rows = run(t, cat, `SELECT DISTINCT u.u_name FROM users u, msgs m WHERE u.u_id = m.m_user`)
	if len(rows) != 6 {
		t.Fatalf("distinct over join = %d rows", len(rows))
	}
	// Rendering round-trips the keyword.
	q, err := Parse(cat, "SELECT DISTINCT u_name FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "DISTINCT") {
		t.Error("DISTINCT lost in rendering")
	}
}
