package sqlparse

import "testing"

// FuzzParse drives the lexer and parser with arbitrary statements against the
// shared test catalog. The properties it enforces are crash-freedom (any
// input must produce a query or an error, never a panic) and determinism
// (parsing the same input twice gives the same outcome). Seeds cover the
// dialect's surface: joins, aliases, aggregates, every predicate form, ORDER
// BY/LIMIT, parameters, and the popsql/EXPERIMENTS.md example shapes.
func FuzzParse(f *testing.F) {
	cat := testCatalog(f)
	seeds := []string{
		"SELECT u_id FROM users WHERE u_id < 5",
		"SELECT u.u_name FROM users u WHERE u.u_id = 3",
		"SELECT u.u_name, m.m_len FROM users u, msgs m WHERE u.u_id = m.m_user AND m.m_len > 40",
		"SELECT u_name, COUNT(*) AS n, SUM(u_age) AS total, AVG(u_age) AS a FROM users GROUP BY u_name",
		"SELECT u_id FROM users ORDER BY u_id DESC LIMIT 3",
		"SELECT u_id FROM users WHERE u_name LIKE 'a%'",
		"SELECT u_id FROM users WHERE u_id IN (1, 2, 3)",
		"SELECT u_id FROM users WHERE u_id NOT BETWEEN 10 AND 119",
		"SELECT u_id FROM users WHERE NOT (u_id < 110) OR u_name IS NULL",
		"SELECT u_id FROM users WHERE u_joined < DATE '2001-06-15'",
		"SELECT u_id FROM users WHERE u_id * 2 = 10",
		"SELECT u_id FROM users WHERE u_age = ?",
		"SELECT n_name, COUNT(*) AS n FROM nation, supplier WHERE n_nationkey = s_nationkey GROUP BY n_name",
		"SELECT",
		"SELECT ( FROM WHERE",
		"SELECT u_id FROM users WHERE u_name = 'unterminated",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		q1, err1 := Parse(cat, sql)
		if err1 == nil && q1 == nil {
			t.Fatalf("Parse(%q) returned neither a query nor an error", sql)
		}
		q2, err2 := Parse(cat, sql)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Parse(%q) nondeterministic: first err=%v, second err=%v", sql, err1, err2)
		}
		if err1 != nil && err1.Error() != err2.Error() {
			t.Fatalf("Parse(%q) error message nondeterministic: %q vs %q", sql, err1, err2)
		}
		if err1 == nil && len(q1.Tables) != len(q2.Tables) {
			t.Fatalf("Parse(%q) query shape nondeterministic: %d vs %d tables", sql, len(q1.Tables), len(q2.Tables))
		}
	})
}
