// Package sqlparse implements a lexer and recursive-descent parser for the
// SQL subset the engine supports: single-block SELECT queries with joins in
// the FROM list, WHERE conjunctions/disjunctions, comparison, BETWEEN, LIKE,
// IN-lists, IS NULL, arithmetic, parameter markers, GROUP BY, ORDER BY and
// LIMIT. Parsing produces a resolved logical.Query via logical.Builder.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single/double char operators: = <> < <= > >= ( ) , . + - * / ?
)

type token struct {
	kind tokenKind
	text string // identifiers are lowercased; strings are unquoted
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokString:
		return "'" + t.text + "'"
	default:
		return t.text
	}
}

// lexer tokenizes an input string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: strings.ToLower(l.src[start:l.pos]), pos: start}, nil
	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sqlparse: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokPunct, text: "<>", pos: start}, nil
		}
		return token{}, fmt.Errorf("sqlparse: unexpected '!' at offset %d", start)
	case strings.ContainsRune("=(),.+-*/?;", rune(c)):
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	default:
		return token{}, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }
