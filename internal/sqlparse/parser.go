package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/schema"
	"repro/internal/types"
)

// Parse compiles a SQL text into a resolved logical query against the
// catalog.
func Parse(cat *catalog.Catalog, sql string) (*logical.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{cat: cat, toks: toks}
	return p.parseSelect()
}

type tableBinding struct {
	alias string
	sch   *schema.Schema
}

type parser struct {
	cat    *catalog.Catalog
	toks   []token
	pos    int
	b      *logical.Builder
	tables []tableBinding
	params int
}

func (p *parser) cur() token      { return p.toks[p.pos] }
func (p *parser) advance()        { p.pos++ }
func (p *parser) save() int       { return p.pos }
func (p *parser) restore(pos int) { p.pos = pos }

// isKeyword reports whether the current token is the given keyword.
func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlparse: expected %s, found %s", strings.ToUpper(kw), p.cur())
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.cur()
	if t.kind == tokPunct && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("sqlparse: expected %q, found %s", s, p.cur())
	}
	return nil
}

// reserved words that terminate clause parsing or cannot be aliases.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "order": true,
	"by": true, "limit": true, "and": true, "or": true, "not": true, "as": true,
	"in": true, "like": true, "between": true, "is": true, "null": true,
	"asc": true, "desc": true, "date": true, "count": true, "sum": true,
	"min": true, "max": true, "avg": true, "distinct": true,
}

// parseSelect parses the whole statement. The FROM clause is parsed before
// the select list (two passes over the token range) so column references in
// the select list can be resolved immediately.
func (p *parser) parseSelect() (*logical.Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	distinct := p.acceptKeyword("distinct")
	selStart := p.save()
	// Skip to the top-level FROM.
	depth := 0
	for {
		t := p.cur()
		if t.kind == tokEOF {
			return nil, fmt.Errorf("sqlparse: missing FROM clause")
		}
		if t.kind == tokPunct && t.text == "(" {
			depth++
		}
		if t.kind == tokPunct && t.text == ")" {
			depth--
		}
		if depth == 0 && t.kind == tokIdent && t.text == "from" {
			break
		}
		p.advance()
	}
	selEnd := p.save() // position of FROM
	p.advance()        // consume FROM

	p.b = logical.NewBuilder(p.cat)
	if distinct {
		p.b.Distinct()
	}
	if err := p.parseFromList(); err != nil {
		return nil, err
	}
	afterFrom := p.save()

	// Go back and parse the select list with tables bound.
	p.restore(selStart)
	if err := p.parseSelectList(selEnd); err != nil {
		return nil, err
	}
	p.restore(afterFrom)

	if p.acceptKeyword("where") {
		pred, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		p.b.Where(pred)
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			p.b.GroupBy(col)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			desc := false
			if p.acceptKeyword("desc") {
				desc = true
			} else {
				p.acceptKeyword("asc")
			}
			p.b.OrderBy(col, desc)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlparse: LIMIT expects a number, found %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlparse: bad LIMIT %q", t.text)
		}
		p.advance()
		p.b.Limit(n)
	}
	p.acceptPunct(";")
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: unexpected trailing input at %s", t)
	}
	return p.b.Build()
}

func (p *parser) parseFromList() error {
	for {
		t := p.cur()
		if t.kind != tokIdent || reserved[t.text] {
			return fmt.Errorf("sqlparse: expected table name, found %s", t)
		}
		tableName := t.text
		p.advance()
		alias := tableName
		if at := p.cur(); at.kind == tokIdent && !reserved[at.text] {
			alias = at.text
			p.advance()
		}
		if p.b.AddTable(tableName, alias) < 0 {
			// Builder captured the error; force it out now for a clear
			// message.
			if _, err := p.b.Build(); err != nil {
				return err
			}
		}
		tab, err := p.cat.Table(tableName)
		if err != nil {
			return err
		}
		p.tables = append(p.tables, tableBinding{alias: alias, sch: tab.Schema})
		if !p.acceptPunct(",") {
			return nil
		}
	}
}

func (p *parser) parseSelectList(end int) error {
	for p.save() < end {
		agg := logical.AggNone
		if t := p.cur(); t.kind == tokIdent {
			switch t.text {
			case "count":
				agg = logical.AggCount
			case "sum":
				agg = logical.AggSum
			case "min":
				agg = logical.AggMin
			case "max":
				agg = logical.AggMax
			case "avg":
				agg = logical.AggAvg
			}
		}
		var item expr.Expr
		name := ""
		if agg != logical.AggNone {
			aggName := p.cur().text
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return err
			}
			if agg == logical.AggCount && p.acceptPunct("*") {
				item = nil
			} else {
				e, err := p.parseAddExpr()
				if err != nil {
					return err
				}
				item = e
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			name = aggName
		} else {
			e, err := p.parseAddExpr()
			if err != nil {
				return err
			}
			item = e
			if c, ok := e.(*expr.ColRef); ok {
				name = c.Name
			}
		}
		if p.acceptKeyword("as") {
			t := p.cur()
			if t.kind != tokIdent {
				return fmt.Errorf("sqlparse: expected alias after AS, found %s", t)
			}
			name = t.text
			p.advance()
		}
		if agg != logical.AggNone {
			p.b.SelectAgg(agg, item, name)
		} else {
			p.b.SelectExpr(item, name)
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	return nil
}

// parseColumnRef parses alias.col or a bare column resolved across tables.
func (p *parser) parseColumnRef() (*expr.ColRef, error) {
	t := p.cur()
	if t.kind != tokIdent || reserved[t.text] {
		return nil, fmt.Errorf("sqlparse: expected column reference, found %s", t)
	}
	first := t.text
	p.advance()
	if p.acceptPunct(".") {
		t2 := p.cur()
		if t2.kind != tokIdent {
			return nil, fmt.Errorf("sqlparse: expected column after %q., found %s", first, t2)
		}
		p.advance()
		return p.b.Col(first, t2.text), nil
	}
	// Bare column: must be unambiguous across the FROM tables.
	matches := 0
	owner := ""
	for _, tb := range p.tables {
		if tb.sch.Ordinal(first) >= 0 {
			matches++
			owner = tb.alias
		}
	}
	switch matches {
	case 0:
		return nil, fmt.Errorf("sqlparse: unknown column %q", first)
	case 1:
		return p.b.Col(owner, first), nil
	default:
		return nil, fmt.Errorf("sqlparse: ambiguous column %q", first)
	}
}

func (p *parser) parseOrExpr() (expr.Expr, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	args := []expr.Expr{left}
	for p.acceptKeyword("or") {
		right, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, right)
	}
	if len(args) == 1 {
		return left, nil
	}
	return &expr.Logic{Op: expr.Or, Args: args}, nil
}

func (p *parser) parseAndExpr() (expr.Expr, error) {
	left, err := p.parseNotExpr()
	if err != nil {
		return nil, err
	}
	args := []expr.Expr{left}
	for p.acceptKeyword("and") {
		right, err := p.parseNotExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, right)
	}
	if len(args) == 1 {
		return left, nil
	}
	return &expr.Logic{Op: expr.And, Args: args}, nil
}

func (p *parser) parseNotExpr() (expr.Expr, error) {
	if p.acceptKeyword("not") {
		inner, err := p.parseNotExpr()
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (expr.Expr, error) {
	left, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("is") {
		negate := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &expr.IsNull{E: left, Negate: negate}, nil
	}
	// [NOT] LIKE / IN / BETWEEN
	negate := false
	if p.isKeyword("not") {
		// Only treat as predicate negation if followed by LIKE/IN/BETWEEN.
		save := p.save()
		p.advance()
		if p.isKeyword("like") || p.isKeyword("in") || p.isKeyword("between") {
			negate = true
		} else {
			p.restore(save)
		}
	}
	switch {
	case p.acceptKeyword("like"):
		t := p.cur()
		if t.kind != tokString {
			return nil, fmt.Errorf("sqlparse: LIKE expects a string pattern, found %s", t)
		}
		p.advance()
		return expr.NewLike(left, t.text, negate), nil
	case p.acceptKeyword("in"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var list []expr.Expr
		for {
			e, err := p.parseAddExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		var in expr.Expr = &expr.InList{Input: left, List: list}
		if negate {
			in = &expr.Not{E: in}
		}
		return in, nil
	case p.acceptKeyword("between"):
		lo, err := p.parseAddExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAddExpr()
		if err != nil {
			return nil, err
		}
		var between expr.Expr = &expr.Logic{Op: expr.And, Args: []expr.Expr{
			&expr.Cmp{Op: expr.GE, L: left, R: lo},
			&expr.Cmp{Op: expr.LE, L: left, R: hi},
		}}
		if negate {
			between = &expr.Not{E: between}
		}
		return between, nil
	}
	// Comparison.
	ops := map[string]expr.CmpOp{
		"=": expr.EQ, "<>": expr.NE, "<": expr.LT, "<=": expr.LE,
		">": expr.GT, ">=": expr.GE,
	}
	t := p.cur()
	if t.kind == tokPunct {
		if op, ok := ops[t.text]; ok {
			p.advance()
			right, err := p.parseAddExpr()
			if err != nil {
				return nil, err
			}
			return &expr.Cmp{Op: op, L: left, R: right}, nil
		}
	}
	// A bare expression (e.g. inside parentheses) is returned as-is.
	return left, nil
}

func (p *parser) parseAddExpr() (expr.Expr, error) {
	left, err := p.parseMulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("+"):
			right, err := p.parseMulExpr()
			if err != nil {
				return nil, err
			}
			left = &expr.Arith{Op: expr.Add, L: left, R: right}
		case p.acceptPunct("-"):
			right, err := p.parseMulExpr()
			if err != nil {
				return nil, err
			}
			left = &expr.Arith{Op: expr.Sub, L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMulExpr() (expr.Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("*"):
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			left = &expr.Arith{Op: expr.Mul, L: left, R: right}
		case p.acceptPunct("/"):
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			left = &expr.Arith{Op: expr.Div, L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlparse: bad number %q", t.text)
			}
			return &expr.Const{Val: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: bad number %q", t.text)
		}
		return &expr.Const{Val: types.NewInt(i)}, nil
	case t.kind == tokString:
		p.advance()
		return &expr.Const{Val: types.NewString(t.text)}, nil
	case t.kind == tokPunct && t.text == "?":
		p.advance()
		id := p.params
		p.params++
		return p.b.Param(id), nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		inner, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokPunct && t.text == "-":
		p.advance()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &expr.Arith{Op: expr.Sub, L: &expr.Const{Val: types.NewInt(0)}, R: inner}, nil
	case t.kind == tokIdent && t.text == "date":
		p.advance()
		s := p.cur()
		if s.kind != tokString {
			return nil, fmt.Errorf("sqlparse: DATE expects a string literal, found %s", s)
		}
		p.advance()
		d, err := time.Parse("2006-01-02", s.text)
		if err != nil {
			return nil, fmt.Errorf("sqlparse: bad date %q", s.text)
		}
		return &expr.Const{Val: types.MakeDate(d.Year(), d.Month(), d.Day())}, nil
	case t.kind == tokIdent && t.text == "null":
		p.advance()
		return &expr.Const{Val: types.Null}, nil
	case t.kind == tokIdent && !reserved[t.text]:
		return p.parseColumnRef()
	default:
		return nil, fmt.Errorf("sqlparse: unexpected token %s", t)
	}
}
