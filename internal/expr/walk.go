package expr

import (
	"sort"

	"repro/internal/types"
)

// Walk calls fn for every node of the expression tree in pre-order.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *Cmp:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *Logic:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *Not:
		Walk(n.E, fn)
	case *IsNull:
		Walk(n.E, fn)
	case *InList:
		Walk(n.Input, fn)
		for _, a := range n.List {
			Walk(a, fn)
		}
	case *Arith:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *Like:
		Walk(n.Input, fn)
	}
}

// Remap returns a copy of the tree with every column reference's position
// rewritten through f. The optimizer uses it to translate query-global column
// ids into operator-input ordinals just before execution. The input tree is
// not modified.
func Remap(e Expr, f func(pos int) int) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *ColRef:
		return &ColRef{Pos: f(n.Pos), Name: n.Name}
	case *Const:
		return n
	case *Param:
		return n
	case *Cmp:
		return &Cmp{Op: n.Op, L: Remap(n.L, f), R: Remap(n.R, f)}
	case *Logic:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Remap(a, f)
		}
		return &Logic{Op: n.Op, Args: args}
	case *Not:
		return &Not{E: Remap(n.E, f)}
	case *IsNull:
		return &IsNull{E: Remap(n.E, f), Negate: n.Negate}
	case *InList:
		list := make([]Expr, len(n.List))
		for i, a := range n.List {
			list[i] = Remap(a, f)
		}
		return &InList{Input: Remap(n.Input, f), List: list}
	case *Arith:
		return &Arith{Op: n.Op, L: Remap(n.L, f), R: Remap(n.R, f)}
	case *Like:
		return NewLike(Remap(n.Input, f), n.Pattern, n.Negate)
	default:
		return e
	}
}

// BindParams returns a copy of the tree with every parameter marker replaced
// by its bound constant. Markers whose id has no binding are left in place.
// Trees without markers are returned unchanged (no copy). The plan cache uses
// this to estimate a binding's true selectivities from histograms while the
// cached plan itself keeps the markers and stays valid for other bindings.
func BindParams(e Expr, params []types.Datum) Expr {
	if e == nil || len(params) == 0 || !HasParam(e) {
		return e
	}
	return bindParams(e, params)
}

func bindParams(e Expr, params []types.Datum) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *Param:
		if n.ID >= 0 && n.ID < len(params) {
			return &Const{Val: params[n.ID]}
		}
		return n
	case *Cmp:
		return &Cmp{Op: n.Op, L: bindParams(n.L, params), R: bindParams(n.R, params)}
	case *Logic:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = bindParams(a, params)
		}
		return &Logic{Op: n.Op, Args: args}
	case *Not:
		return &Not{E: bindParams(n.E, params)}
	case *IsNull:
		return &IsNull{E: bindParams(n.E, params), Negate: n.Negate}
	case *InList:
		list := make([]Expr, len(n.List))
		for i, a := range n.List {
			list[i] = bindParams(a, params)
		}
		return &InList{Input: bindParams(n.Input, params), List: list}
	case *Arith:
		return &Arith{Op: n.Op, L: bindParams(n.L, params), R: bindParams(n.R, params)}
	case *Like:
		return NewLike(bindParams(n.Input, params), n.Pattern, n.Negate)
	default:
		return e
	}
}

// Conjuncts flattens nested ANDs into a list of conjuncts. Non-AND
// expressions come back as a single-element list.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if l, ok := e.(*Logic); ok && l.Op == And {
		var out []Expr
		for _, a := range l.Args {
			out = append(out, Conjuncts(a)...)
		}
		return out
	}
	return []Expr{e}
}

// Conjoin combines predicates with AND; nil and empty inputs collapse away.
func Conjoin(preds ...Expr) Expr {
	var nonNil []Expr
	for _, p := range preds {
		if p != nil {
			nonNil = append(nonNil, p)
		}
	}
	switch len(nonNil) {
	case 0:
		return nil
	case 1:
		return nonNil[0]
	default:
		return &Logic{Op: And, Args: nonNil}
	}
}

// ColumnsUsed returns the sorted set of column positions referenced anywhere
// in the tree.
func ColumnsUsed(e Expr) []int {
	seen := map[int]bool{}
	Walk(e, func(n Expr) {
		if c, ok := n.(*ColRef); ok {
			seen[c.Pos] = true
		}
	})
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// HasParam reports whether the tree contains a parameter marker; predicates
// with markers get default selectivities at optimization time.
func HasParam(e Expr) bool {
	found := false
	Walk(e, func(n Expr) {
		if _, ok := n.(*Param); ok {
			found = true
		}
	})
	return found
}

// EquiJoinColumns recognizes "colA = colB" between exactly two column refs
// and returns their positions. The optimizer uses this to identify hashable
// and mergeable join predicates and index-lookup keys.
func EquiJoinColumns(e Expr) (left, right int, ok bool) {
	c, isCmp := e.(*Cmp)
	if !isCmp || c.Op != EQ {
		return 0, 0, false
	}
	l, lok := c.L.(*ColRef)
	r, rok := c.R.(*ColRef)
	if !lok || !rok {
		return 0, 0, false
	}
	return l.Pos, r.Pos, true
}

// Accept reports whether the datum is a non-NULL TRUE — the filter acceptance
// test under three-valued logic (NULL and FALSE both reject).
func Accept(d types.Datum) bool {
	return d.Kind() == types.KindBool && d.Bool()
}
