package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/types"
)

func mustEval(t *testing.T, e Expr, row schema.Row) types.Datum {
	t.Helper()
	v, err := e.Eval(nil, row)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func col(pos int) *ColRef          { return &ColRef{Pos: pos} }
func lit(d types.Datum) *Const     { return &Const{Val: d} }
func intLit(v int64) *Const        { return lit(types.NewInt(v)) }
func strLit(s string) *Const       { return lit(types.NewString(s)) }
func cmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }
func and(args ...Expr) *Logic      { return &Logic{Op: And, Args: args} }
func or(args ...Expr) *Logic       { return &Logic{Op: Or, Args: args} }

func TestColRef(t *testing.T) {
	row := schema.Row{types.NewInt(10), types.NewString("x")}
	if v := mustEval(t, col(0), row); v.Int() != 10 {
		t.Error("col 0")
	}
	if _, err := col(5).Eval(nil, row); err == nil {
		t.Error("out-of-range column should error")
	}
	if (&ColRef{Pos: 3}).String() != "$3" {
		t.Error("anonymous colref rendering")
	}
	if (&ColRef{Pos: 3, Name: "l_qty"}).String() != "l_qty" {
		t.Error("named colref rendering")
	}
}

func TestParamBinding(t *testing.T) {
	ctx := &Context{Params: []types.Datum{types.NewInt(7)}}
	p := &Param{ID: 0}
	v, err := p.Eval(ctx, nil)
	if err != nil || v.Int() != 7 {
		t.Fatalf("param eval: %v %v", v, err)
	}
	if _, err := (&Param{ID: 3}).Eval(ctx, nil); err == nil {
		t.Error("unbound param should error")
	}
	if _, err := (&Param{ID: 0}).Eval(nil, nil); err == nil {
		t.Error("nil context should error")
	}
	if p.String() != "?0" {
		t.Error("param rendering")
	}
}

func TestCmpOperators(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r int64
		want bool
	}{
		{EQ, 1, 1, true}, {EQ, 1, 2, false},
		{NE, 1, 2, true}, {NE, 1, 1, false},
		{LT, 1, 2, true}, {LT, 2, 2, false},
		{LE, 2, 2, true}, {LE, 3, 2, false},
		{GT, 3, 2, true}, {GT, 2, 2, false},
		{GE, 2, 2, true}, {GE, 1, 2, false},
	}
	for _, c := range cases {
		got := mustEval(t, cmp(c.op, intLit(c.l), intLit(c.r)), nil)
		if got.Bool() != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestCmpNullPropagation(t *testing.T) {
	v := mustEval(t, cmp(EQ, lit(types.Null), intLit(1)), nil)
	if !v.IsNull() {
		t.Error("NULL = 1 should be NULL")
	}
	v = mustEval(t, cmp(LT, intLit(1), lit(types.Null)), nil)
	if !v.IsNull() {
		t.Error("1 < NULL should be NULL")
	}
}

func TestCmpOpNegateFlip(t *testing.T) {
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		if op.Negate().Negate() != op {
			t.Errorf("double negation of %s", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("double flip of %s", op)
		}
	}
	if LT.Flip() != GT || LE.Flip() != GE || EQ.Flip() != EQ {
		t.Error("flip table wrong")
	}
	if EQ.Negate() != NE || LT.Negate() != GE {
		t.Error("negate table wrong")
	}
}

func TestLogicKleene(t *testing.T) {
	T := lit(types.NewBool(true))
	F := lit(types.NewBool(false))
	N := lit(types.Null)

	if mustEval(t, and(T, F), nil).Bool() {
		t.Error("T AND F")
	}
	if !mustEval(t, and(T, T), nil).Bool() {
		t.Error("T AND T")
	}
	if !mustEval(t, and(F, N), nil).IsNull() == false && mustEval(t, and(F, N), nil).Bool() {
		t.Error("F AND NULL must be FALSE")
	}
	if v := mustEval(t, and(F, N), nil); v.IsNull() || v.Bool() {
		t.Error("F AND NULL must be FALSE")
	}
	if v := mustEval(t, and(T, N), nil); !v.IsNull() {
		t.Error("T AND NULL must be NULL")
	}
	if v := mustEval(t, or(T, N), nil); v.IsNull() || !v.Bool() {
		t.Error("T OR NULL must be TRUE")
	}
	if v := mustEval(t, or(F, N), nil); !v.IsNull() {
		t.Error("F OR NULL must be NULL")
	}
	// Empty AND is TRUE, empty OR is FALSE.
	if !mustEval(t, and(), nil).Bool() {
		t.Error("empty AND")
	}
	if mustEval(t, or(), nil).Bool() {
		t.Error("empty OR")
	}
}

func TestNot(t *testing.T) {
	if mustEval(t, &Not{E: lit(types.NewBool(true))}, nil).Bool() {
		t.Error("NOT TRUE")
	}
	if !mustEval(t, &Not{E: lit(types.NewBool(false))}, nil).Bool() {
		t.Error("NOT FALSE")
	}
	if !mustEval(t, &Not{E: lit(types.Null)}, nil).IsNull() {
		t.Error("NOT NULL must be NULL")
	}
}

func TestIsNull(t *testing.T) {
	if !mustEval(t, &IsNull{E: lit(types.Null)}, nil).Bool() {
		t.Error("NULL IS NULL")
	}
	if mustEval(t, &IsNull{E: intLit(1)}, nil).Bool() {
		t.Error("1 IS NULL")
	}
	if !mustEval(t, &IsNull{E: intLit(1), Negate: true}, nil).Bool() {
		t.Error("1 IS NOT NULL")
	}
	s := (&IsNull{E: col(0), Negate: true}).String()
	if !strings.Contains(s, "IS NOT NULL") {
		t.Errorf("rendering: %s", s)
	}
}

func TestInList(t *testing.T) {
	in := &InList{Input: col(0), List: []Expr{intLit(1), intLit(3), intLit(5)}}
	if !mustEval(t, in, schema.Row{types.NewInt(3)}).Bool() {
		t.Error("3 IN (1,3,5)")
	}
	if mustEval(t, in, schema.Row{types.NewInt(2)}).Bool() {
		t.Error("2 IN (1,3,5)")
	}
	if !mustEval(t, in, schema.Row{types.Null}).IsNull() {
		t.Error("NULL IN (...) must be NULL")
	}
	// Non-match with NULL member → NULL.
	inNull := &InList{Input: col(0), List: []Expr{intLit(1), lit(types.Null)}}
	if !mustEval(t, inNull, schema.Row{types.NewInt(9)}).IsNull() {
		t.Error("9 IN (1, NULL) must be NULL")
	}
	// Match beats NULL member.
	if !mustEval(t, inNull, schema.Row{types.NewInt(1)}).Bool() {
		t.Error("1 IN (1, NULL) must be TRUE")
	}
}

func TestArith(t *testing.T) {
	if mustEval(t, &Arith{Op: Add, L: intLit(2), R: intLit(3)}, nil).Int() != 5 {
		t.Error("2+3")
	}
	if mustEval(t, &Arith{Op: Sub, L: intLit(2), R: intLit(3)}, nil).Int() != -1 {
		t.Error("2-3")
	}
	if mustEval(t, &Arith{Op: Mul, L: intLit(2), R: intLit(3)}, nil).Int() != 6 {
		t.Error("2*3")
	}
	if mustEval(t, &Arith{Op: Div, L: intLit(6), R: intLit(3)}, nil).Float() != 2.0 {
		t.Error("6/3 should be float 2")
	}
	if mustEval(t, &Arith{Op: Add, L: intLit(1), R: lit(types.NewFloat(0.5))}, nil).Float() != 1.5 {
		t.Error("mixed arithmetic")
	}
	if !mustEval(t, &Arith{Op: Add, L: lit(types.Null), R: intLit(1)}, nil).IsNull() {
		t.Error("NULL + 1 must be NULL")
	}
	if _, err := (&Arith{Op: Div, L: intLit(1), R: intLit(0)}).Eval(nil, nil); err == nil {
		t.Error("division by zero should error")
	}
	if _, err := (&Arith{Op: Add, L: strLit("a"), R: intLit(1)}).Eval(nil, nil); err == nil {
		t.Error("string arithmetic should error")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		pattern, input string
		want           bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"ab%", "abcdef", true},
		{"ab%", "xabc", false},
		{"%ef", "abcdef", true},
		{"%cd%", "abcdef", true},
		{"%cd%", "abef", false},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"%a_c%", "xxabcyy", true},
		{"%", "", true},
		{"_%", "", false},
		{"h_llo%w_rld", "hello cruel world", true},
	}
	for _, c := range cases {
		l := NewLike(col(0), c.pattern, false)
		got := mustEval(t, l, schema.Row{types.NewString(c.input)})
		if got.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.input, c.pattern, got, c.want)
		}
	}
}

func TestLikeNegateAndNull(t *testing.T) {
	l := NewLike(col(0), "ab%", true)
	if !mustEval(t, l, schema.Row{types.NewString("xyz")}).Bool() {
		t.Error("'xyz' NOT LIKE 'ab%'")
	}
	if !mustEval(t, l, schema.Row{types.Null}).IsNull() {
		t.Error("NULL NOT LIKE p must be NULL")
	}
	if _, err := l.Eval(nil, schema.Row{types.NewInt(1)}); err == nil {
		t.Error("LIKE on int should error")
	}
}

func TestLikeLazyCompile(t *testing.T) {
	// A Like built without NewLike (e.g. by Remap-free literal construction)
	// must still work.
	l := &Like{Input: col(0), Pattern: "a%"}
	if !mustEval(t, l, schema.Row{types.NewString("abc")}).Bool() {
		t.Error("lazy-compiled matcher failed")
	}
}

func TestLikeSelectivityHint(t *testing.T) {
	if LikeSelectivityHint("abc") != "exact" {
		t.Error("exact hint")
	}
	if LikeSelectivityHint("ab%") != "prefix" {
		t.Error("prefix hint")
	}
	if LikeSelectivityHint("%ab") != "fuzzy" {
		t.Error("suffix hint")
	}
	if LikeSelectivityHint("a_c") != "fuzzy" {
		t.Error("underscore hint")
	}
}

func TestStringRendering(t *testing.T) {
	e := and(cmp(EQ, &ColRef{Pos: 0, Name: "a"}, intLit(1)), or(cmp(LT, col(1), intLit(5)), &Not{E: col(2)}))
	s := e.String()
	for _, want := range []string{"a = 1", "AND", "OR", "NOT"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering %q missing %q", s, want)
		}
	}
}

// Property: likeMatch with a pattern equal to the input (no wildcards)
// always matches, and a '%'-wrapped substring always matches.
func TestLikeProperty(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true // skip inputs containing wildcards
		}
		if !likeMatch(s, s) {
			return false
		}
		return likeMatch("%"+s+"%", "prefix"+s+"suffix")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
