package expr

import (
	"reflect"
	"testing"

	"repro/internal/types"
)

func TestConjunctsFlattening(t *testing.T) {
	a := cmp(EQ, col(0), intLit(1))
	b := cmp(EQ, col(1), intLit(2))
	c := cmp(EQ, col(2), intLit(3))
	e := and(and(a, b), c)
	cj := Conjuncts(e)
	if len(cj) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cj))
	}
	// An OR is a single conjunct.
	if got := Conjuncts(or(a, b)); len(got) != 1 {
		t.Errorf("OR should be one conjunct, got %d", len(got))
	}
	if Conjuncts(nil) != nil {
		t.Error("nil should yield nil")
	}
}

func TestConjoin(t *testing.T) {
	a := cmp(EQ, col(0), intLit(1))
	b := cmp(EQ, col(1), intLit(2))
	if Conjoin() != nil {
		t.Error("empty conjoin should be nil")
	}
	if Conjoin(nil, nil) != nil {
		t.Error("all-nil conjoin should be nil")
	}
	if Conjoin(a) != a {
		t.Error("single conjoin should be identity")
	}
	e := Conjoin(a, nil, b)
	if len(Conjuncts(e)) != 2 {
		t.Error("conjoin of two should have two conjuncts")
	}
}

func TestColumnsUsed(t *testing.T) {
	e := and(
		cmp(EQ, col(3), intLit(1)),
		or(cmp(LT, col(1), col(3)), NewLike(col(7), "a%", false)),
		&InList{Input: col(2), List: []Expr{intLit(1), col(9)}},
		&Arith{Op: Add, L: col(1), R: intLit(0)},
	)
	got := ColumnsUsed(e)
	want := []int{1, 2, 3, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ColumnsUsed = %v, want %v", got, want)
	}
}

func TestHasParam(t *testing.T) {
	if HasParam(cmp(EQ, col(0), intLit(1))) {
		t.Error("no param expected")
	}
	if !HasParam(cmp(LE, col(0), &Param{ID: 0})) {
		t.Error("param expected")
	}
	if !HasParam(and(intLit(1), &Not{E: &IsNull{E: &Param{ID: 2}}})) {
		t.Error("nested param expected")
	}
}

func TestRemap(t *testing.T) {
	e := and(
		cmp(EQ, &ColRef{Pos: 10, Name: "a"}, intLit(1)),
		NewLike(&ColRef{Pos: 20}, "x%", false),
		&InList{Input: &ColRef{Pos: 30}, List: []Expr{intLit(5)}},
		&IsNull{E: &ColRef{Pos: 10}},
		&Not{E: &Cmp{Op: LT, L: &Arith{Op: Mul, L: &ColRef{Pos: 20}, R: intLit(2)}, R: intLit(9)}},
	)
	m := Remap(e, func(p int) int { return p / 10 })
	got := ColumnsUsed(m)
	want := []int{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remapped columns = %v, want %v", got, want)
	}
	// Original untouched.
	if !reflect.DeepEqual(ColumnsUsed(e), []int{10, 20, 30}) {
		t.Error("Remap mutated the original tree")
	}
	// Name survives remap.
	found := false
	Walk(m, func(n Expr) {
		if c, ok := n.(*ColRef); ok && c.Name == "a" && c.Pos == 1 {
			found = true
		}
	})
	if !found {
		t.Error("named colref lost in remap")
	}
}

func TestRemapPreservesSemantics(t *testing.T) {
	// Shift every column by one and evaluate against a shifted row.
	e := and(cmp(GT, col(0), intLit(5)), cmp(EQ, col(1), strLit("x")))
	shifted := Remap(e, func(p int) int { return p + 1 })
	row := append([]types.Datum{types.Null}, types.NewInt(10), types.NewString("x"))
	v, err := shifted.Eval(nil, row)
	if err != nil || !v.Bool() {
		t.Fatalf("shifted eval = %v, %v", v, err)
	}
}

func TestEquiJoinColumns(t *testing.T) {
	l, r, ok := EquiJoinColumns(cmp(EQ, col(2), col(7)))
	if !ok || l != 2 || r != 7 {
		t.Errorf("equijoin detection failed: %d %d %v", l, r, ok)
	}
	if _, _, ok := EquiJoinColumns(cmp(LT, col(2), col(7))); ok {
		t.Error("< is not an equijoin")
	}
	if _, _, ok := EquiJoinColumns(cmp(EQ, col(2), intLit(1))); ok {
		t.Error("col = const is not an equijoin")
	}
	if _, _, ok := EquiJoinColumns(and()); ok {
		t.Error("AND is not an equijoin")
	}
}

func TestAccept(t *testing.T) {
	if !Accept(types.NewBool(true)) {
		t.Error("TRUE accepted")
	}
	if Accept(types.NewBool(false)) {
		t.Error("FALSE rejected")
	}
	if Accept(types.Null) {
		t.Error("NULL rejected")
	}
	if Accept(types.NewInt(1)) {
		t.Error("non-bool rejected")
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	e := and(
		cmp(EQ, col(0), intLit(1)),
		&Not{E: &IsNull{E: col(1)}},
		NewLike(col(2), "%z", false),
	)
	count := 0
	Walk(e, func(Expr) { count++ })
	// and(1) + cmp(1)+col+lit(2) + not(1)+isnull(1)+col(1) + like(1)+col(1) = 9
	if count != 9 {
		t.Errorf("walk visited %d nodes, want 9", count)
	}
	Walk(nil, func(Expr) { t.Error("nil walk should not visit") })
}
