package expr

import (
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/types"
)

// Like implements the SQL LIKE predicate with % (any run) and _ (any single
// character) wildcards. The pattern is fixed at plan time, so the matcher is
// compiled once. LIKE predicates are one of the estimation-error sources the
// paper calls out in the DMV study (§6).
type Like struct {
	Input   Expr
	Pattern string
	Negate  bool

	matcher func(string) bool
}

// NewLike builds a LIKE predicate with a compiled matcher.
func NewLike(input Expr, pattern string, negate bool) *Like {
	return &Like{Input: input, Pattern: pattern, Negate: negate, matcher: compileLike(pattern)}
}

// Eval matches the input string against the pattern; NULL input yields NULL.
func (l *Like) Eval(ctx *Context, row schema.Row) (types.Datum, error) {
	v, err := l.Input.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	if v.IsNull() {
		return types.Null, nil
	}
	if v.Kind() != types.KindString {
		return types.Null, fmt.Errorf("expr: LIKE on non-string %s", v.Kind())
	}
	if l.matcher == nil {
		l.matcher = compileLike(l.Pattern)
	}
	return types.NewBool(l.matcher(v.Str()) != l.Negate), nil
}

func (l *Like) String() string {
	op := "LIKE"
	if l.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s '%s'", l.Input.String(), op, l.Pattern)
}

// compileLike builds a matcher for a LIKE pattern. Common shapes (no
// wildcards, pure prefix, pure suffix, %infix%) get direct string functions;
// the general case uses a greedy segment matcher equivalent to the classic
// glob algorithm.
func compileLike(pattern string) func(string) bool {
	if !strings.ContainsAny(pattern, "%_") {
		return func(s string) bool { return s == pattern }
	}
	if !strings.Contains(pattern, "_") {
		trimmed := strings.Trim(pattern, "%")
		if !strings.Contains(trimmed, "%") {
			pre := strings.HasPrefix(pattern, "%")
			suf := strings.HasSuffix(pattern, "%")
			switch {
			case pre && suf:
				return func(s string) bool { return strings.Contains(s, trimmed) }
			case suf:
				return func(s string) bool { return strings.HasPrefix(s, trimmed) }
			case pre:
				return func(s string) bool { return strings.HasSuffix(s, trimmed) }
			}
		}
	}
	return func(s string) bool { return likeMatch(pattern, s) }
}

// likeMatch is an iterative wildcard matcher: '%' matches any run, '_' any
// single byte. It backtracks only to the most recent '%', giving linear-ish
// behaviour on realistic patterns.
func likeMatch(pattern, s string) bool {
	var pi, si int
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// LikeSelectivityHint classifies a pattern for the estimator: exact patterns
// behave like equality, prefix patterns like short ranges, and infix/suffix
// patterns are nearly unestimable (the estimator applies a coarse default —
// exactly the kind of guess that POP exists to correct).
func LikeSelectivityHint(pattern string) string {
	switch {
	case !strings.ContainsAny(pattern, "%_"):
		return "exact"
	case strings.HasSuffix(pattern, "%") && !strings.ContainsAny(strings.TrimSuffix(pattern, "%"), "%_"):
		return "prefix"
	default:
		return "fuzzy"
	}
}
