// Package expr implements scalar expressions and predicates: comparisons,
// boolean logic with SQL three-valued semantics, LIKE, IN-lists, arithmetic,
// and parameter markers (the estimation-error source used by the paper's
// Figure 11 experiment).
//
// Column references carry an integer position. At the logical-plan level that
// position is a query-global column id; before execution the optimizer
// rewrites each operator's expressions with Remap so the position becomes the
// ordinal in the operator's input row.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/types"
)

// Context carries per-execution state needed by expression evaluation:
// the bindings for parameter markers.
type Context struct {
	// Params holds the value bound to each parameter marker, indexed by the
	// marker's ID.
	Params []types.Datum
}

// Param returns the binding for marker id, or an error if unbound.
func (c *Context) Param(id int) (types.Datum, error) {
	if c == nil || id < 0 || id >= len(c.Params) {
		return types.Null, fmt.Errorf("expr: unbound parameter marker ?%d", id)
	}
	return c.Params[id], nil
}

// Expr is a scalar expression evaluated against a row.
type Expr interface {
	// Eval computes the expression's value for the given row.
	Eval(ctx *Context, row schema.Row) (types.Datum, error)
	// String renders the expression in SQL-ish syntax.
	String() string
}

// ColRef references a column by position (see the package comment for the
// two position conventions). Name is for display only.
type ColRef struct {
	Pos  int
	Name string
}

// Eval returns the datum at the referenced position.
func (c *ColRef) Eval(_ *Context, row schema.Row) (types.Datum, error) {
	if c.Pos < 0 || c.Pos >= len(row) {
		return types.Null, fmt.Errorf("expr: column position %d out of range for row of %d", c.Pos, len(row))
	}
	return row[c.Pos], nil
}

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Pos)
}

// Const is a literal value.
type Const struct{ Val types.Datum }

// Eval returns the literal.
func (c *Const) Eval(*Context, schema.Row) (types.Datum, error) { return c.Val, nil }

func (c *Const) String() string { return c.Val.String() }

// Param is a parameter marker ("?"). Its value is unknown at optimization
// time — the optimizer assigns a default selectivity to predicates over it —
// and bound in Context at execution time.
type Param struct{ ID int }

// Eval returns the bound parameter value.
func (p *Param) Eval(ctx *Context, _ schema.Row) (types.Datum, error) { return ctx.Param(p.ID) }

func (p *Param) String() string { return fmt.Sprintf("?%d", p.ID) }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?op?"
	}
}

// Negate returns the complementary operator (EQ↔NE, LT↔GE, ...).
func (o CmpOp) Negate() CmpOp {
	switch o {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	}
	return o
}

// Flip returns the operator with operands swapped (LT↔GT, LE↔GE).
func (o CmpOp) Flip() CmpOp {
	switch o {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return o // EQ and NE are symmetric
	}
}

// Cmp compares two sub-expressions. NULL operands yield NULL (unknown).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements SQL comparison with three-valued logic.
func (c *Cmp) Eval(ctx *Context, row schema.Row) (types.Datum, error) {
	l, err := c.L.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	r, err := c.R.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	rel, err := l.Compare(r)
	if err != nil {
		return types.Null, err
	}
	var out bool
	switch c.Op {
	case EQ:
		out = rel == 0
	case NE:
		out = rel != 0
	case LT:
		out = rel < 0
	case LE:
		out = rel <= 0
	case GT:
		out = rel > 0
	case GE:
		out = rel >= 0
	}
	return types.NewBool(out), nil
}

func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L.String(), c.Op, c.R.String())
}

// LogicOp is AND or OR.
type LogicOp uint8

// Boolean connectives.
const (
	And LogicOp = iota
	Or
)

func (o LogicOp) String() string {
	if o == And {
		return "AND"
	}
	return "OR"
}

// Logic combines boolean sub-expressions with three-valued AND/OR.
type Logic struct {
	Op   LogicOp
	Args []Expr
}

// Eval implements Kleene logic: AND is false if any arg is false, NULL if
// any is NULL and none false; OR dually.
func (l *Logic) Eval(ctx *Context, row schema.Row) (types.Datum, error) {
	sawNull := false
	for _, a := range l.Args {
		v, err := a.Eval(ctx, row)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		b := v.Bool()
		if l.Op == And && !b {
			return types.NewBool(false), nil
		}
		if l.Op == Or && b {
			return types.NewBool(true), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(l.Op == And), nil
}

func (l *Logic) String() string {
	parts := make([]string, len(l.Args))
	for i, a := range l.Args {
		parts[i] = "(" + a.String() + ")"
	}
	return strings.Join(parts, " "+l.Op.String()+" ")
}

// Not negates a boolean expression; NOT NULL is NULL.
type Not struct{ E Expr }

// Eval implements three-valued negation.
func (n *Not) Eval(ctx *Context, row schema.Row) (types.Datum, error) {
	v, err := n.E.Eval(ctx, row)
	if err != nil || v.IsNull() {
		return types.Null, err
	}
	return types.NewBool(!v.Bool()), nil
}

func (n *Not) String() string { return "NOT (" + n.E.String() + ")" }

// IsNull tests for NULL; with Negate it is IS NOT NULL. It always yields a
// non-NULL boolean.
type IsNull struct {
	E      Expr
	Negate bool
}

// Eval returns TRUE/FALSE (never NULL).
func (i *IsNull) Eval(ctx *Context, row schema.Row) (types.Datum, error) {
	v, err := i.E.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	return types.NewBool(v.IsNull() != i.Negate), nil
}

func (i *IsNull) String() string {
	if i.Negate {
		return i.E.String() + " IS NOT NULL"
	}
	return i.E.String() + " IS NULL"
}

// InList tests membership in a list of expressions (usually constants).
// A non-matching probe with NULL list members yields NULL per SQL.
type InList struct {
	Input Expr
	List  []Expr
}

// Eval implements SQL IN semantics.
func (in *InList) Eval(ctx *Context, row schema.Row) (types.Datum, error) {
	probe, err := in.Input.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	if probe.IsNull() {
		return types.Null, nil
	}
	sawNull := false
	for _, e := range in.List {
		v, err := e.Eval(ctx, row)
		if err != nil {
			return types.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		rel, err := probe.Compare(v)
		if err != nil {
			continue // incomparable list member never matches
		}
		if rel == 0 {
			return types.NewBool(true), nil
		}
	}
	if sawNull {
		return types.Null, nil
	}
	return types.NewBool(false), nil
}

func (in *InList) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s IN (%s)", in.Input.String(), strings.Join(parts, ", "))
}

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (o ArithOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	default:
		return "/"
	}
}

// Arith computes L op R with numeric coercion: int op int stays int (except
// division, which is float), otherwise float.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval performs the arithmetic; NULL operands propagate.
func (a *Arith) Eval(ctx *Context, row schema.Row) (types.Datum, error) {
	l, err := a.L.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	r, err := a.R.Eval(ctx, row)
	if err != nil {
		return types.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null, nil
	}
	if !l.Kind().Numeric() || !r.Kind().Numeric() {
		return types.Null, fmt.Errorf("expr: arithmetic on non-numeric %s %s %s", l.Kind(), a.Op, r.Kind())
	}
	if l.Kind() == types.KindInt && r.Kind() == types.KindInt && a.Op != Div {
		x, y := l.Int(), r.Int()
		switch a.Op {
		case Add:
			return types.NewInt(x + y), nil
		case Sub:
			return types.NewInt(x - y), nil
		case Mul:
			return types.NewInt(x * y), nil
		default:
			// Div is excluded by the guard above (integer division promotes
			// to float); fall through to the float path.
		}
	}
	x, y := l.Float(), r.Float()
	switch a.Op {
	case Add:
		return types.NewFloat(x + y), nil
	case Sub:
		return types.NewFloat(x - y), nil
	case Mul:
		return types.NewFloat(x * y), nil
	default:
		if y == 0 {
			return types.Null, fmt.Errorf("expr: division by zero")
		}
		return types.NewFloat(x / y), nil
	}
}

func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L.String(), a.Op, a.R.String())
}
