package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

// feed plays a small synthetic statement history into a registry: two cached
// statements (one hit, one miss with a guard reject), one violation with a
// re-optimization, parallel workers, and analyze-mode operator stats.
func feed(r *Registry) {
	evs := []trace.Event{
		{Kind: trace.CacheMiss, Cache: &trace.CacheInfo{OptWork: 120, Plans: 1}},
		{Kind: trace.OptimizeStart},
		{Kind: trace.OptimizeDone, Opt: &trace.OptInfo{Candidates: 120, Checks: 2}},
		{Kind: trace.CheckpointViolated, Check: &trace.CheckInfo{ID: 0, Est: 320, Actual: 8000}},
		{Kind: trace.Reoptimize, Reopt: &trace.ReoptInfo{MVsCreated: 1, FeedbackN: 4}},
		{Kind: trace.OptimizeStart, Attempt: 1},
		{Kind: trace.OptimizeDone, Attempt: 1, Opt: &trace.OptInfo{Candidates: 80, Checks: 1}},
		{Kind: trace.WorkerStart, Worker: &trace.WorkerInfo{Phase: "gather", Worker: 0, DOP: 2}},
		{Kind: trace.WorkerStart, Worker: &trace.WorkerInfo{Phase: "gather", Worker: 1, DOP: 2}},
		{Kind: trace.WorkerDrain, Worker: &trace.WorkerInfo{Phase: "gather", Worker: 0, DOP: 2, Rows: 100, Work: 30}},
		{Kind: trace.WorkerDrain, Worker: &trace.WorkerInfo{Phase: "gather", Worker: 1, DOP: 2, Rows: 100, Work: 45}},
		{Kind: trace.CheckpointPassed, Check: &trace.CheckInfo{ID: 1, Est: 8000, Actual: 8000, Exact: true}},
		{Kind: trace.OperatorDone, Op: &trace.OpInfo{Op: "TBSCAN", Est: 40000, Actual: 40000, Work: 60}},
		{Kind: trace.OperatorDone, Op: &trace.OpInfo{Op: "HSJN", Est: 8000, Actual: 8000, Work: 30, DOP: 2}},
		{Kind: trace.OperatorDone, Op: &trace.OpInfo{Op: "RETURN", Est: 8000, Actual: 8000, Work: 10}},
		{Kind: trace.QueryDone, Done: &trace.DoneInfo{Rows: 8000, Work: 100, Reopts: 1}},

		{Kind: trace.CacheGuardReject, Cache: &trace.CacheInfo{GuardEst: 30000, RangeLo: 100}},
		{Kind: trace.CacheHit, Cache: &trace.CacheInfo{OptWork: 7, OptWorkSaved: 113, Plans: 2}},
		{Kind: trace.CheckpointPassed, Check: &trace.CheckInfo{ID: 0, Est: 310, Actual: 300}},
		{Kind: trace.QueryDone, Done: &trace.DoneInfo{Rows: 12, Work: 50}},

		{Kind: trace.CacheInvalidate, Cache: &trace.CacheInfo{Plans: 1}},
	}
	for _, ev := range evs {
		r.Record(ev)
	}
}

func TestSnapshotCounters(t *testing.T) {
	r := New()
	feed(r)
	s := r.Snapshot()

	intChecks := []struct {
		name string
		got  int64
		want int64
	}{
		{"Queries", s.Queries, 2},
		{"Optimizations", s.Optimizations, 2},
		{"Reoptimizations", s.Reoptimizations, 1},
		{"CheckViolations", s.CheckViolations, 1},
		{"ChecksPassed", s.ChecksPassed, 2},
		{"CacheHits", s.CacheHits, 1},
		{"CacheMisses", s.CacheMisses, 1},
		{"CacheGuardRejects", s.CacheGuardRejects, 1},
		{"CacheInvalidates", s.CacheInvalidates, 1},
		{"WorkersStarted", s.WorkersStarted, 2},
		{"WorkersDrained", s.WorkersDrained, 2},
		{"RowsReturned", s.RowsReturned, 8012},
		{"OptCandidates", s.OptCandidates, 200},
	}
	for _, c := range intChecks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if math.Abs(s.ExecWork-150) > 1e-6 {
		t.Errorf("ExecWork = %v, want 150", s.ExecWork)
	}
	if math.Abs(s.WorkerWork-75) > 1e-6 {
		t.Errorf("WorkerWork = %v, want 75", s.WorkerWork)
	}
	if math.Abs(s.CacheHitRatio-0.5) > 1e-9 {
		t.Errorf("CacheHitRatio = %v, want 0.5", s.CacheHitRatio)
	}
	if math.Abs(s.WorkerUtilization-0.5) > 1e-9 {
		t.Errorf("WorkerUtilization = %v, want 0.5", s.WorkerUtilization)
	}
	if s.WorkByClass["scan"] != 60 || s.WorkByClass["join"] != 30 || s.WorkByClass["return"] != 10 {
		t.Errorf("WorkByClass = %v", s.WorkByClass)
	}
	if s.RowsByClass["join"] != 8000 {
		t.Errorf("RowsByClass = %v", s.RowsByClass)
	}
}

func TestEmptySnapshotRatios(t *testing.T) {
	s := New().Snapshot()
	if s.CacheHitRatio != 0 || s.WorkerUtilization != 0 {
		t.Errorf("idle registry must report zero ratios, got %+v", s)
	}
	if s.WorkByClass != nil {
		t.Errorf("idle registry must omit the class breakdown, got %v", s.WorkByClass)
	}
}

func TestClass(t *testing.T) {
	want := map[string]string{
		"TBSCAN": "scan", "IXSCAN": "scan", "HXSCAN": "scan", "MVSCAN": "scan",
		"NLJN": "join", "HSJN": "join", "MGJN": "join",
		"SORT": "sortagg", "TEMP": "sortagg", "GRPBY": "sortagg",
		"XCHG": "exchange", "CHECK": "check", "RETURN": "return",
		"MYSTERY": "other",
	}
	for op, cls := range want {
		if got := Class(op); got != cls {
			t.Errorf("Class(%q) = %q, want %q", op, got, cls)
		}
	}
}

func TestWriteText(t *testing.T) {
	r := New()
	feed(r)
	var b strings.Builder
	r.Snapshot().WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"queries", "reoptimizations", "cache hit ratio", "worker utilization",
		"work by operator class:", "scan", "join",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentRecord drives the registry from concurrent goroutines — the
// exchange-worker pattern — relying on -race in CI, and checks the totals.
func TestConcurrentRecord(t *testing.T) {
	r := New()
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(trace.Event{Kind: trace.WorkerDrain,
					Worker: &trace.WorkerInfo{Phase: "probe", Work: 1}})
				r.Record(trace.Event{Kind: trace.OperatorDone,
					Op: &trace.OpInfo{Op: "HSJN", Actual: 1, Work: 1}})
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.WorkersDrained != workers*per {
		t.Errorf("WorkersDrained = %d, want %d", s.WorkersDrained, workers*per)
	}
	if math.Abs(s.WorkerWork-workers*per) > 1e-6 {
		t.Errorf("WorkerWork = %v, want %d", s.WorkerWork, workers*per)
	}
	if s.WorkByClass["join"] != workers*per {
		t.Errorf("WorkByClass[join] = %v, want %d", s.WorkByClass["join"], workers*per)
	}
}

// TestFailedQueriesCounted pins the failure accounting added with the
// query_error event: failed statements land in their own counter and appear
// in the text rendering, which must also carry the worker-work total that
// the utilization ratio is derived from.
func TestFailedQueriesCounted(t *testing.T) {
	r := New()
	feed(r)
	r.Record(trace.Event{Kind: trace.QueryError, Err: &trace.ErrInfo{Error: "boom"}})

	s := r.Snapshot()
	if s.QueriesFailed != 1 {
		t.Fatalf("QueriesFailed = %d, want 1", s.QueriesFailed)
	}
	if s.Queries != 2 {
		t.Fatalf("a failed statement must not count as completed: Queries = %d", s.Queries)
	}

	var b strings.Builder
	s.WriteText(&b)
	out := b.String()
	for _, want := range []string{"queries failed", "worker work"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}
