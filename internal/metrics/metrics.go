// Package metrics is the engine's cumulative counter registry: queries run,
// re-optimizations, checkpoint outcomes, plan-cache verdicts, exchange worker
// activity and work units by operator class. The registry is itself a
// trace.Recorder — attaching it to a runner's trace stream is all the wiring
// there is — so every counter is derived from the same typed events the JSONL
// trace carries, and the two views can never disagree. All counters are
// atomics; Record is safe from concurrent exchange workers.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// workTick fixes the precision work-unit sums are accumulated at (integer
// ticks, so concurrent additions are associative and totals deterministic).
const workTick = 1 << 20

// Registry accumulates counters from trace events. The zero value is ready
// to use.
type Registry struct {
	queries    atomic.Int64
	failed     atomic.Int64
	optimizes  atomic.Int64
	reopts     atomic.Int64
	violations atomic.Int64
	passed     atomic.Int64

	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	cacheGuardRejects atomic.Int64
	cacheInvalidates  atomic.Int64

	workersStarted atomic.Int64
	workersDrained atomic.Int64
	workerTicks    atomic.Int64 // work units drained by exchange workers

	dopClamps       atomic.Int64 // exchanges granted fewer workers than asked
	inlineRuns      atomic.Int64 // exchanges granted zero (ran inline)
	admissionWaits  atomic.Int64
	admissionWaitNS atomic.Int64
	admissionRejcts atomic.Int64
	maxQueueDepth   atomic.Int64 // deepest admission queue observed

	rows       atomic.Int64
	execTicks  atomic.Int64 // work units across completed queries
	candidates atomic.Int64 // optimizer candidate costings

	mu          sync.Mutex
	workByClass map[string]float64 // operator class → work units (analyze mode)
	rowsByClass map[string]float64
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Class maps an operator's display name to its metrics class.
func Class(op string) string {
	switch op {
	case "TBSCAN", "IXSCAN", "HXSCAN", "MVSCAN":
		return "scan"
	case "NLJN", "HSJN", "MGJN":
		return "join"
	case "SORT", "TEMP", "GRPBY":
		return "sortagg"
	case "XCHG":
		return "exchange"
	case "CHECK":
		return "check"
	case "RETURN":
		return "return"
	default:
		return "other"
	}
}

// Record implements trace.Recorder.
func (r *Registry) Record(ev trace.Event) {
	switch ev.Kind {
	case trace.OptimizeStart:
		r.optimizes.Add(1)
	case trace.OptimizeDone:
		if ev.Opt != nil {
			r.candidates.Add(int64(ev.Opt.Candidates))
		}
	case trace.CheckpointPassed:
		r.passed.Add(1)
	case trace.CheckpointViolated:
		r.violations.Add(1)
	case trace.Reoptimize:
		r.reopts.Add(1)
	case trace.CacheHit:
		r.cacheHits.Add(1)
	case trace.CacheMiss:
		r.cacheMisses.Add(1)
	case trace.CacheGuardReject:
		r.cacheGuardRejects.Add(1)
	case trace.CacheInvalidate:
		r.cacheInvalidates.Add(1)
	case trace.WorkerStart:
		r.workersStarted.Add(1)
	case trace.WorkerDrain:
		r.workersDrained.Add(1)
		if ev.Worker != nil {
			r.workerTicks.Add(int64(math.Round(ev.Worker.Work * workTick)))
		}
	case trace.OperatorDone:
		if ev.Op != nil {
			c := Class(ev.Op.Op)
			r.mu.Lock()
			if r.workByClass == nil {
				r.workByClass = make(map[string]float64)
				r.rowsByClass = make(map[string]float64)
			}
			r.workByClass[c] += ev.Op.Work
			r.rowsByClass[c] += ev.Op.Actual
			r.mu.Unlock()
		}
	case trace.QueryDone:
		r.queries.Add(1)
		if ev.Done != nil {
			r.rows.Add(int64(ev.Done.Rows))
			r.execTicks.Add(int64(math.Round(ev.Done.Work * workTick)))
		}
	case trace.QueryError:
		r.failed.Add(1)
	case trace.DOPClamp:
		r.dopClamps.Add(1)
		if ev.Sched != nil && ev.Sched.Granted == 0 {
			r.inlineRuns.Add(1)
		}
	case trace.AdmissionWait:
		r.admissionWaits.Add(1)
		if ev.Sched != nil {
			r.admissionWaitNS.Add(ev.Sched.WaitNS)
			for {
				cur := r.maxQueueDepth.Load()
				if int64(ev.Sched.Depth) <= cur || r.maxQueueDepth.CompareAndSwap(cur, int64(ev.Sched.Depth)) {
					break
				}
			}
		}
	case trace.AdmissionReject:
		r.admissionRejcts.Add(1)
	}
}

// Snapshot is a point-in-time copy of every counter, JSON-encodable.
type Snapshot struct {
	Queries           int64 `json:"queries"`
	QueriesFailed     int64 `json:"queries_failed"`
	Optimizations     int64 `json:"optimizations"`
	Reoptimizations   int64 `json:"reoptimizations"`
	CheckViolations   int64 `json:"check_violations"`
	ChecksPassed      int64 `json:"checks_passed"`
	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	CacheGuardRejects int64 `json:"cache_guard_rejects"`
	CacheInvalidates  int64 `json:"cache_invalidates"`
	WorkersStarted    int64 `json:"workers_started"`
	WorkersDrained    int64 `json:"workers_drained"`
	DOPClamps         int64 `json:"dop_clamps"`
	InlineRuns        int64 `json:"inline_runs"`
	AdmissionWaits    int64 `json:"admission_waits"`
	AdmissionWaitNS   int64 `json:"admission_wait_ns"`
	AdmissionRejects  int64 `json:"admission_rejects"`
	MaxQueueDepth     int64 `json:"max_queue_depth"`

	RowsReturned  int64   `json:"rows_returned"`
	ExecWork      float64 `json:"exec_work"`
	WorkerWork    float64 `json:"worker_work"`
	OptCandidates int64   `json:"opt_candidates"`

	// CacheHitRatio is hits / (hits + misses); zero when the cache was idle.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// WorkerUtilization is the fraction of execution work performed inside
	// exchange workers — how much of the statement ran in parallel.
	WorkerUtilization float64 `json:"worker_utilization"`

	WorkByClass map[string]float64 `json:"work_by_class,omitempty"`
	RowsByClass map[string]float64 `json:"rows_by_class,omitempty"`
}

// Snapshot copies the registry's counters and derives the ratio gauges.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Queries:           r.queries.Load(),
		QueriesFailed:     r.failed.Load(),
		Optimizations:     r.optimizes.Load(),
		Reoptimizations:   r.reopts.Load(),
		CheckViolations:   r.violations.Load(),
		ChecksPassed:      r.passed.Load(),
		CacheHits:         r.cacheHits.Load(),
		CacheMisses:       r.cacheMisses.Load(),
		CacheGuardRejects: r.cacheGuardRejects.Load(),
		CacheInvalidates:  r.cacheInvalidates.Load(),
		WorkersStarted:    r.workersStarted.Load(),
		WorkersDrained:    r.workersDrained.Load(),
		DOPClamps:         r.dopClamps.Load(),
		InlineRuns:        r.inlineRuns.Load(),
		AdmissionWaits:    r.admissionWaits.Load(),
		AdmissionWaitNS:   r.admissionWaitNS.Load(),
		AdmissionRejects:  r.admissionRejcts.Load(),
		MaxQueueDepth:     r.maxQueueDepth.Load(),
		RowsReturned:      r.rows.Load(),
		ExecWork:          float64(r.execTicks.Load()) / workTick,
		WorkerWork:        float64(r.workerTicks.Load()) / workTick,
		OptCandidates:     r.candidates.Load(),
	}
	if n := s.CacheHits + s.CacheMisses; n > 0 {
		s.CacheHitRatio = float64(s.CacheHits) / float64(n)
	}
	if s.ExecWork > 0 {
		s.WorkerUtilization = s.WorkerWork / s.ExecWork
	}
	r.mu.Lock()
	if len(r.workByClass) > 0 {
		s.WorkByClass = make(map[string]float64, len(r.workByClass))
		for k, v := range r.workByClass {
			s.WorkByClass[k] = v
		}
		s.RowsByClass = make(map[string]float64, len(r.rowsByClass))
		for k, v := range r.rowsByClass {
			s.RowsByClass[k] = v
		}
	}
	r.mu.Unlock()
	return s
}

// WriteText renders the snapshot as an aligned two-column listing, with the
// per-class work breakdown sorted by descending work.
func (s Snapshot) WriteText(w io.Writer) {
	line := func(name string, v interface{}) { fmt.Fprintf(w, "%-22s %v\n", name, v) }
	line("queries", s.Queries)
	line("queries failed", s.QueriesFailed)
	line("optimizations", s.Optimizations)
	line("reoptimizations", s.Reoptimizations)
	line("check violations", s.CheckViolations)
	line("checks passed", s.ChecksPassed)
	line("cache hits", s.CacheHits)
	line("cache misses", s.CacheMisses)
	line("cache guard rejects", s.CacheGuardRejects)
	line("cache invalidates", s.CacheInvalidates)
	fmt.Fprintf(w, "%-22s %.3f\n", "cache hit ratio", s.CacheHitRatio)
	line("workers started", s.WorkersStarted)
	line("workers drained", s.WorkersDrained)
	line("dop clamps", s.DOPClamps)
	line("inline runs", s.InlineRuns)
	line("admission waits", s.AdmissionWaits)
	line("admission rejects", s.AdmissionRejects)
	line("max queue depth", s.MaxQueueDepth)
	fmt.Fprintf(w, "%-22s %.3f\n", "worker utilization", s.WorkerUtilization)
	line("rows returned", s.RowsReturned)
	fmt.Fprintf(w, "%-22s %.1f\n", "exec work", s.ExecWork)
	fmt.Fprintf(w, "%-22s %.1f\n", "worker work", s.WorkerWork)
	line("opt candidates", s.OptCandidates)
	if len(s.WorkByClass) > 0 {
		classes := make([]string, 0, len(s.WorkByClass))
		for c := range s.WorkByClass {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool {
			if s.WorkByClass[classes[i]] != s.WorkByClass[classes[j]] {
				return s.WorkByClass[classes[i]] > s.WorkByClass[classes[j]]
			}
			return classes[i] < classes[j]
		})
		fmt.Fprintln(w, "work by operator class:")
		for _, c := range classes {
			fmt.Fprintf(w, "  %-20s %12.1f work  %10.0f rows\n", c, s.WorkByClass[c], s.RowsByClass[c])
		}
	}
}
