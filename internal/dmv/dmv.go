// Package dmv synthesizes the paper's §6 case study: a department-of-motor-
// vehicles database with strong cross-column correlations (MAKE↔MODEL↔COLOR,
// MODEL↔WEIGHT, owner ZIP↔car ZIP, AGE↔MAKE) and a workload of 39 complex
// decision-support queries over it.
//
// The paper's DMV data is proprietary; this generator reproduces the
// property that matters — functional dependencies and correlations that the
// optimizer's independence assumption turns into cardinality under-estimates
// of many orders of magnitude (the paper observed errors exceeding 10^6).
package dmv

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/schema"
	"repro/internal/types"
)

// Config controls generation.
type Config struct {
	// Scale multiplies the default table sizes (CAR ≈ 30000×Scale).
	Scale float64
	Seed  uint64
}

// DefaultConfig is the laptop-scale default.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 17} }

// rng is the same xorshift64* PRNG the TPC-H generator uses.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// Correlation structure constants.
const (
	numMakes     = 20
	modelsPerMk  = 4
	numModels    = numMakes * modelsPerMk
	numColors    = 12
	numZips      = 100
	numCounties  = 20
	numCompanies = 25
)

var makeNames = []string{
	"TOYOTA", "FORD", "HONDA", "CHEVY", "NISSAN", "BMW", "AUDI", "KIA",
	"MAZDA", "VOLVO", "FIAT", "JEEP", "SUBARU", "TESLA", "DODGE", "LEXUS",
	"ACURA", "BUICK", "SAAB", "MINI",
}

var colorNames = []string{
	"BLACK", "WHITE", "SILVER", "GRAY", "RED", "BLUE", "GREEN", "BROWN",
	"YELLOW", "ORANGE", "PURPLE", "GOLD",
}

// MakeName returns the make string for index m.
func MakeName(m int) string { return makeNames[m%numMakes] }

// ModelName returns the model string for model index md; the make is
// recoverable from the model (md / modelsPerMk).
func ModelName(md int) string {
	return fmt.Sprintf("%s-M%d", makeNames[(md/modelsPerMk)%numMakes], md%modelsPerMk)
}

// ColorName returns a color string.
func ColorName(c int) string { return colorNames[((c%numColors)+numColors)%numColors] }

// ColorForModel is the correlated color assignment: each model concentrates
// on 3 of the 12 colors.
func ColorForModel(md int, pick int) int { return (md*3 + pick%3) % numColors }

// WeightForModel is the near-functional weight: model determines weight
// within a ±24 kg band.
func WeightForModel(md int, jitter int) int { return 1000 + md*45 + jitter%25 }

// sizes returns table cardinalities under a scale.
func sizes(scale float64) map[string]int {
	s := func(n float64) int {
		v := int(n * scale)
		if v < 10 {
			v = 10
		}
		return v
	}
	return map[string]int{
		"owner":        s(20000),
		"car":          s(30000),
		"registration": s(33000),
		"inspection":   s(24000),
		"violation":    s(18000),
		"insurance":    s(27000),
		"accident":     s(9000),
		"dealer":       400,
		"office":       150,
		"station":      220,
		"company":      numCompanies,
		"county":       numCounties,
	}
}

// Load creates and populates the DMV database: 12 tables, indexes on every
// key and foreign key, statistics analyzed.
func Load(cat *catalog.Catalog, cfg Config) error {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	n := sizes(cfg.Scale)
	r := newRNG(cfg.Seed)

	county, err := cat.CreateTable("county", schema.New(
		schema.Column{Name: "cy_id", Type: types.KindInt},
		schema.Column{Name: "cy_name", Type: types.KindString},
		schema.Column{Name: "cy_region", Type: types.KindString},
	))
	if err != nil {
		return err
	}
	for i := 0; i < n["county"]; i++ {
		county.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("COUNTY_%02d", i)),
			types.NewString([]string{"NORTH", "SOUTH", "EAST", "WEST"}[i%4]),
		})
	}

	office, err := cat.CreateTable("office", schema.New(
		schema.Column{Name: "of_id", Type: types.KindInt},
		schema.Column{Name: "of_zip", Type: types.KindInt},
		schema.Column{Name: "of_county", Type: types.KindInt},
	))
	if err != nil {
		return err
	}
	for i := 0; i < n["office"]; i++ {
		zip := r.intn(numZips)
		office.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(zip)),
			types.NewInt(int64(zip % numCounties)), // zip determines county
		})
	}

	station, err := cat.CreateTable("station", schema.New(
		schema.Column{Name: "st_id", Type: types.KindInt},
		schema.Column{Name: "st_zip", Type: types.KindInt},
		schema.Column{Name: "st_grade", Type: types.KindString},
	))
	if err != nil {
		return err
	}
	for i := 0; i < n["station"]; i++ {
		station.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(r.intn(numZips))),
			types.NewString([]string{"A", "B", "C"}[r.intn(3)]),
		})
	}

	company, err := cat.CreateTable("company", schema.New(
		schema.Column{Name: "co_id", Type: types.KindInt},
		schema.Column{Name: "co_name", Type: types.KindString},
		schema.Column{Name: "co_rating", Type: types.KindInt},
	))
	if err != nil {
		return err
	}
	for i := 0; i < n["company"]; i++ {
		company.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("INSURER_%02d", i)),
			types.NewInt(int64(1 + r.intn(5))),
		})
	}

	dealer, err := cat.CreateTable("dealer", schema.New(
		schema.Column{Name: "d_id", Type: types.KindInt},
		schema.Column{Name: "d_name", Type: types.KindString},
		schema.Column{Name: "d_zip", Type: types.KindInt},
		schema.Column{Name: "d_make", Type: types.KindString},
	))
	if err != nil {
		return err
	}
	for i := 0; i < n["dealer"]; i++ {
		dealer.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("DEALER_%03d", i)),
			types.NewInt(int64(r.intn(numZips))),
			types.NewString(MakeName(r.intn(numMakes))),
		})
	}

	owner, err := cat.CreateTable("owner", schema.New(
		schema.Column{Name: "o_id", Type: types.KindInt},
		schema.Column{Name: "o_name", Type: types.KindString},
		schema.Column{Name: "o_age", Type: types.KindInt},
		schema.Column{Name: "o_zip", Type: types.KindInt},
		schema.Column{Name: "o_income", Type: types.KindFloat},
	))
	if err != nil {
		return err
	}
	// Owner preferred make drives the AGE↔MAKE correlation: the make of an
	// owner's car depends on the owner, and the owner's age clusters by it.
	ownerMake := make([]int, n["owner"])
	ownerZip := make([]int, n["owner"])
	for i := 0; i < n["owner"]; i++ {
		mk := r.intn(numMakes)
		ownerMake[i] = mk
		// ZIP↔MAKE correlation: each zip concentrates on 5 makes.
		zip := (mk*5 + r.intn(5)) % numZips
		ownerZip[i] = zip
		age := 18 + mk*2 + r.intn(12) // AGE↔MAKE correlation
		owner.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("OWNER_%06d", i)),
			types.NewInt(int64(age)),
			types.NewInt(int64(zip)),
			types.NewFloat(15000 + r.float()*185000),
		})
	}

	car, err := cat.CreateTable("car", schema.New(
		schema.Column{Name: "c_id", Type: types.KindInt},
		schema.Column{Name: "c_owner", Type: types.KindInt},
		schema.Column{Name: "c_make", Type: types.KindString},
		schema.Column{Name: "c_model", Type: types.KindString},
		schema.Column{Name: "c_color", Type: types.KindString},
		schema.Column{Name: "c_weight", Type: types.KindInt},
		schema.Column{Name: "c_year", Type: types.KindInt},
		schema.Column{Name: "c_zip", Type: types.KindInt},
	))
	if err != nil {
		return err
	}
	for i := 0; i < n["car"]; i++ {
		ow := r.intn(n["owner"])
		mk := ownerMake[ow] // owner's preferred make
		md := mk*modelsPerMk + r.intn(modelsPerMk)
		car.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(ow)),
			types.NewString(MakeName(mk)),
			types.NewString(ModelName(md)),
			types.NewString(ColorName(ColorForModel(md, r.intn(3)))),
			types.NewInt(int64(WeightForModel(md, r.intn(25)))),
			types.NewInt(int64(1985 + r.intn(20))),
			types.NewInt(int64(ownerZip[ow])), // car registered at owner zip
		})
	}

	fkTables := []struct {
		name string
		cols []schema.Column
		fill func(t *catalog.Table)
	}{
		{
			name: "registration",
			cols: []schema.Column{
				{Name: "r_id", Type: types.KindInt},
				{Name: "r_car", Type: types.KindInt},
				{Name: "r_office", Type: types.KindInt},
				{Name: "r_year", Type: types.KindInt},
				{Name: "r_fee", Type: types.KindFloat},
			},
			fill: func(t *catalog.Table) {
				for i := 0; i < n["registration"]; i++ {
					t.Heap.MustInsert(schema.Row{
						types.NewInt(int64(i)),
						types.NewInt(int64(i % n["car"])),
						types.NewInt(int64(r.intn(n["office"]))),
						types.NewInt(int64(2000 + r.intn(5))),
						types.NewFloat(20 + r.float()*380),
					})
				}
			},
		},
		{
			name: "inspection",
			cols: []schema.Column{
				{Name: "i_id", Type: types.KindInt},
				{Name: "i_car", Type: types.KindInt},
				{Name: "i_station", Type: types.KindInt},
				{Name: "i_result", Type: types.KindString},
				{Name: "i_year", Type: types.KindInt},
			},
			fill: func(t *catalog.Table) {
				for i := 0; i < n["inspection"]; i++ {
					res := "PASS"
					if r.intn(10) < 2 {
						res = "FAIL"
					}
					t.Heap.MustInsert(schema.Row{
						types.NewInt(int64(i)),
						types.NewInt(int64(r.intn(n["car"]))),
						types.NewInt(int64(r.intn(n["station"]))),
						types.NewString(res),
						types.NewInt(int64(2000 + r.intn(5))),
					})
				}
			},
		},
		{
			name: "violation",
			cols: []schema.Column{
				{Name: "v_id", Type: types.KindInt},
				{Name: "v_car", Type: types.KindInt},
				{Name: "v_type", Type: types.KindString},
				{Name: "v_fine", Type: types.KindFloat},
			},
			fill: func(t *catalog.Table) {
				kinds := []string{"SPEEDING", "PARKING", "SIGNAL", "DUI", "EXPIRED"}
				for i := 0; i < n["violation"]; i++ {
					t.Heap.MustInsert(schema.Row{
						types.NewInt(int64(i)),
						types.NewInt(int64(r.intn(n["car"]))),
						types.NewString(kinds[r.intn(len(kinds))]),
						types.NewFloat(25 + r.float()*975),
					})
				}
			},
		},
		{
			name: "insurance",
			cols: []schema.Column{
				{Name: "ins_id", Type: types.KindInt},
				{Name: "ins_car", Type: types.KindInt},
				{Name: "ins_company", Type: types.KindInt},
				{Name: "ins_premium", Type: types.KindFloat},
			},
			fill: func(t *catalog.Table) {
				for i := 0; i < n["insurance"]; i++ {
					t.Heap.MustInsert(schema.Row{
						types.NewInt(int64(i)),
						types.NewInt(int64(i % n["car"])),
						types.NewInt(int64(r.intn(numCompanies))),
						types.NewFloat(300 + r.float()*2700),
					})
				}
			},
		},
		{
			name: "accident",
			cols: []schema.Column{
				{Name: "a_id", Type: types.KindInt},
				{Name: "a_car", Type: types.KindInt},
				{Name: "a_severity", Type: types.KindInt},
				{Name: "a_damage", Type: types.KindFloat},
			},
			fill: func(t *catalog.Table) {
				for i := 0; i < n["accident"]; i++ {
					t.Heap.MustInsert(schema.Row{
						types.NewInt(int64(i)),
						types.NewInt(int64(r.intn(n["car"]))),
						types.NewInt(int64(1 + r.intn(5))),
						types.NewFloat(100 + r.float()*49900),
					})
				}
			},
		},
	}
	for _, ft := range fkTables {
		t, err := cat.CreateTable(ft.name, schema.New(ft.cols...))
		if err != nil {
			return err
		}
		ft.fill(t)
	}

	// VIOLATION and ACCIDENT are deliberately index-less on their foreign
	// keys: they model the ad-hoc log tables of the real DMV system. When
	// the correlated predicates make the optimizer believe an intermediate
	// result has almost no rows, joining such a table by repeated scans
	// (naive NLJN) looks cheap — the kind of plan whose actual cost explodes
	// by orders of magnitude, which is where the paper's biggest POP
	// speedups come from (§6).
	indexes := [][3]string{
		{"owner_pk", "owner", "o_id"},
		{"car_pk", "car", "c_id"},
		{"car_owner", "car", "c_owner"},
		{"registration_car", "registration", "r_car"},
		{"registration_office", "registration", "r_office"},
		{"inspection_car", "inspection", "i_car"},
		{"inspection_station", "inspection", "i_station"},
		{"insurance_car", "insurance", "ins_car"},
		{"insurance_company", "insurance", "ins_company"},
		{"office_pk", "office", "of_id"},
		{"station_pk", "station", "st_id"},
		{"company_pk", "company", "co_id"},
		{"county_pk", "county", "cy_id"},
		{"dealer_pk", "dealer", "d_id"},
	}
	for _, ix := range indexes {
		if _, err := cat.CreateBTreeIndex(ix[0], ix[1], ix[2]); err != nil {
			return err
		}
	}
	return cat.AnalyzeAll()
}
