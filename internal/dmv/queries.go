package dmv

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// NumQueries is the size of the DMV workload, matching the paper's case
// study ("We use 39 real-world queries obtained from the DMV").
const NumQueries = 39

func eq(l, r expr.Expr) expr.Expr { return &expr.Cmp{Op: expr.EQ, L: l, R: r} }
func ge(l, r expr.Expr) expr.Expr { return &expr.Cmp{Op: expr.GE, L: l, R: r} }
func le(l, r expr.Expr) expr.Expr { return &expr.Cmp{Op: expr.LE, L: l, R: r} }
func str(s string) expr.Expr      { return &expr.Const{Val: types.NewString(s)} }
func intc(i int64) expr.Expr      { return &expr.Const{Val: types.NewInt(i)} }

// satellite chains that can be attached to the CAR hub. Each chain adds the
// listed tables and join predicates.
type chain struct {
	name string
	add  func(b *logical.Builder)
}

func chains() []chain {
	return []chain{
		{name: "registration+office+county", add: func(b *logical.Builder) {
			b.AddTable("registration", "rg")
			b.AddTable("office", "of")
			b.AddTable("county", "cy")
			b.Where(eq(b.Col("rg", "r_car"), b.Col("c", "c_id")))
			b.Where(eq(b.Col("rg", "r_office"), b.Col("of", "of_id")))
			b.Where(eq(b.Col("of", "of_county"), b.Col("cy", "cy_id")))
		}},
		{name: "inspection+station", add: func(b *logical.Builder) {
			b.AddTable("inspection", "ins")
			b.AddTable("station", "st")
			b.Where(eq(b.Col("ins", "i_car"), b.Col("c", "c_id")))
			b.Where(eq(b.Col("ins", "i_station"), b.Col("st", "st_id")))
		}},
		{name: "violation", add: func(b *logical.Builder) {
			b.AddTable("violation", "v")
			b.Where(eq(b.Col("v", "v_car"), b.Col("c", "c_id")))
		}},
		{name: "insurance+company", add: func(b *logical.Builder) {
			b.AddTable("insurance", "pol")
			b.AddTable("company", "co")
			b.Where(eq(b.Col("pol", "ins_car"), b.Col("c", "c_id")))
			b.Where(eq(b.Col("pol", "ins_company"), b.Col("co", "co_id")))
		}},
		{name: "accident", add: func(b *logical.Builder) {
			b.AddTable("accident", "a")
			b.Where(eq(b.Col("a", "a_car"), b.Col("c", "c_id")))
		}},
	}
}

// correlated predicate combos on the CAR/OWNER hub. Each returns a short
// description for diagnostics. These are the §6 pitfalls: restrictions over
// correlated columns whose combined selectivity the independence assumption
// under-estimates by orders of magnitude.
func predCombos() []func(b *logical.Builder, r *rng) string {
	return []func(b *logical.Builder, r *rng) string{
		// MAKE + MODEL: model implies make, so the make predicate is
		// redundant but halves the estimate by another 1/20.
		func(b *logical.Builder, r *rng) string {
			md := r.intn(numModels)
			b.Where(eq(b.Col("c", "c_make"), str(MakeName(md/modelsPerMk))))
			b.Where(eq(b.Col("c", "c_model"), str(ModelName(md))))
			return "make+model"
		},
		// MAKE + MODEL + COLOR: triple correlation.
		func(b *logical.Builder, r *rng) string {
			md := r.intn(numModels)
			b.Where(eq(b.Col("c", "c_make"), str(MakeName(md/modelsPerMk))))
			b.Where(eq(b.Col("c", "c_model"), str(ModelName(md))))
			b.Where(eq(b.Col("c", "c_color"), str(ColorName(ColorForModel(md, r.intn(3))))))
			return "make+model+color"
		},
		// MODEL + WEIGHT range: weight is nearly determined by model.
		func(b *logical.Builder, r *rng) string {
			md := r.intn(numModels)
			b.Where(eq(b.Col("c", "c_model"), str(ModelName(md))))
			b.Where(ge(b.Col("c", "c_weight"), intc(int64(WeightForModel(md, 0)))))
			b.Where(le(b.Col("c", "c_weight"), intc(int64(WeightForModel(md, 24)))))
			return "model+weight"
		},
		// AGE + MAKE: owners of a make cluster in a narrow age band.
		func(b *logical.Builder, r *rng) string {
			mk := r.intn(numMakes)
			lo := int64(18 + mk*2)
			b.Where(eq(b.Col("c", "c_make"), str(MakeName(mk))))
			b.Where(ge(b.Col("o", "o_age"), intc(lo)))
			b.Where(le(b.Col("o", "o_age"), intc(lo+11)))
			return "age+make"
		},
		// ZIP + MAKE: each zip concentrates on 5 makes; the IN-list is a
		// further §6 hazard.
		func(b *logical.Builder, r *rng) string {
			mk := r.intn(numMakes)
			zips := make([]expr.Expr, 3)
			for i := range zips {
				zips[i] = intc(int64((mk*5 + i) % numZips))
			}
			b.Where(eq(b.Col("c", "c_make"), str(MakeName(mk))))
			b.Where(&expr.InList{Input: b.Col("c", "c_zip"), List: zips})
			return "zip+make"
		},
		// Owner/car ZIP agreement: redundant once joined through c_owner.
		func(b *logical.Builder, r *rng) string {
			zip := int64(r.intn(numZips))
			b.Where(eq(b.Col("c", "c_zip"), intc(zip)))
			b.Where(eq(b.Col("o", "o_zip"), intc(zip)))
			return "zip agreement"
		},
		// LIKE on model prefix + make (prefix implies the make too).
		func(b *logical.Builder, r *rng) string {
			mk := r.intn(numMakes)
			b.Where(eq(b.Col("c", "c_make"), str(MakeName(mk))))
			b.Where(expr.NewLike(b.Col("c", "c_model"), MakeName(mk)+"-%", false))
			return "make+model-like"
		},
	}
}

// QueryInfo bundles a generated workload query with its description.
type QueryInfo struct {
	Name  string
	Desc  string
	Query *logical.Query
}

// Queries deterministically generates the 39-query DMV workload. Every
// query joins the CAR↔OWNER hub with one or more satellite chains and
// applies a correlated predicate combo.
func Queries(cat *catalog.Catalog) ([]QueryInfo, error) {
	r := newRNG(99)
	cs := chains()
	combos := predCombos()
	out := make([]QueryInfo, 0, NumQueries)
	for i := 0; i < NumQueries; i++ {
		b := logical.NewBuilder(cat)
		b.AddTable("car", "c")
		b.AddTable("owner", "o")
		b.Where(eq(b.Col("c", "c_owner"), b.Col("o", "o_id")))

		// Attach 1-4 satellite chains, rotating deterministically.
		nChains := 1 + (i % 4)
		used := map[int]bool{}
		names := ""
		for k := 0; k < nChains; k++ {
			ci := (i + k*2 + r.intn(2)) % len(cs)
			if used[ci] {
				ci = (ci + 1) % len(cs)
			}
			if used[ci] {
				continue
			}
			used[ci] = true
			cs[ci].add(b)
			if names != "" {
				names += ","
			}
			names += cs[ci].name
		}

		desc := combos[i%len(combos)](b, r)

		// Alternate aggregate and SPJ shapes.
		if i%2 == 0 {
			b.SelectCol("c", "c_make")
			b.SelectAgg(logical.AggCount, nil, "n")
			b.SelectAgg(logical.AggAvg, b.Col("o", "o_income"), "avg_income")
			b.GroupBy(b.Col("c", "c_make"))
		} else {
			b.SelectCol("c", "c_id")
			b.SelectCol("c", "c_model")
			b.SelectCol("o", "o_name")
		}
		q, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("dmv: query %d (%s; %s): %w", i, desc, names, err)
		}
		out = append(out, QueryInfo{
			Name:  fmt.Sprintf("DMV%02d", i+1),
			Desc:  fmt.Sprintf("%s over %s", desc, names),
			Query: q,
		})
	}
	return out, nil
}
