package dmv

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/pop"
	"repro/internal/stats"
)

func load(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if err := Load(cat, Config{Scale: 0.2, Seed: 17}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestLoadTables(t *testing.T) {
	cat := load(t)
	names := cat.TableNames()
	if len(names) != 12 {
		t.Fatalf("tables = %v", names)
	}
	car, err := cat.Table("car")
	if err != nil {
		t.Fatal(err)
	}
	if car.RowCount() < 1000 {
		t.Errorf("car rows = %v", car.RowCount())
	}
	if car.Stats(car.Schema.Ordinal("c_make")) == nil {
		t.Error("car stats missing")
	}
}

func TestCorrelationsExist(t *testing.T) {
	cat := load(t)
	car, _ := cat.Table("car")
	makeOrd := car.Schema.Ordinal("c_make")
	modelOrd := car.Schema.Ordinal("c_model")
	weightOrd := car.Schema.Ordinal("c_weight")
	// Model must functionally determine make and bound weight tightly.
	modelToMake := map[string]string{}
	it := car.Heap.Scan()
	for {
		row, _, ok := it.Next()
		if !ok {
			break
		}
		model, mk := row[modelOrd].Str(), row[makeOrd].Str()
		if prev, seen := modelToMake[model]; seen && prev != mk {
			t.Fatalf("model %s maps to both %s and %s", model, prev, mk)
		}
		modelToMake[model] = mk
		md := 0
		fmt := -1
		_ = fmt
		_ = md
		w := row[weightOrd].Int()
		if w < 1000 || w > 1000+int64(numModels)*45+25 {
			t.Fatalf("weight %d outside model band", w)
		}
	}
	if len(modelToMake) == 0 {
		t.Fatal("no cars scanned")
	}
}

// TestIndependenceUnderestimates verifies the workload actually produces the
// §6 estimation pathology: the estimated cardinality of the correlated CAR
// restriction is far below the actual.
func TestIndependenceUnderestimates(t *testing.T) {
	cat := load(t)
	qs, err := Queries(cat)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0].Query // make+model combo
	car, _ := cat.Table("car")
	// Estimated: product of individual selectivities.
	est := car.RowCount()
	lk := func(pos int) *stats.ColumnStats {
		ti := q.TableOf(pos)
		if ti < 0 {
			return nil
		}
		tab, _ := cat.Table(q.Tables[ti].Table)
		return tab.Stats(q.OrdinalOf(pos))
	}
	for _, p := range q.LocalPredicates(0) { // car is table 0
		est *= stats.Selectivity(p, lk)
	}
	// Actual: evaluate the predicates.
	actual := 0.0
	it := car.Heap.Scan()
	for {
		row, _, ok := it.Next()
		if !ok {
			break
		}
		keep := true
		for _, p := range q.LocalPredicates(0) {
			// CAR is table 0 with global-id base 0, so global ids are
			// already heap ordinals.
			v, err := p.Eval(nil, row)
			if err != nil || !expr.Accept(v) {
				keep = false
				break
			}
		}
		if keep {
			actual++
		}
	}
	if actual == 0 {
		t.Fatal("correlated predicate selects nothing; generator broken")
	}
	if est*5 > actual {
		t.Errorf("expected a severe under-estimate: est %.1f vs actual %.0f", est, actual)
	}
	t.Logf("under-estimate factor: %.1fx (est %.1f, actual %.0f)", actual/est, est, actual)
}

func TestQueriesGenerateAndRun(t *testing.T) {
	cat := load(t)
	qs, err := Queries(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != NumQueries {
		t.Fatalf("generated %d queries, want %d", len(qs), NumQueries)
	}
	// Run a deterministic sample end-to-end with and without POP and compare.
	for _, i := range []int{0, 5, 13, 22, 31, 38} {
		qi := qs[i]
		t.Run(qi.Name, func(t *testing.T) {
			off, err := pop.NewRunner(cat, pop.Options{Enabled: false}).Run(qi.Query, nil)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			on, err := pop.NewRunner(cat, pop.DefaultOptions()).Run(qi.Query, nil)
			if err != nil {
				t.Fatalf("POP: %v", err)
			}
			if len(on.Rows) != len(off.Rows) {
				t.Errorf("%s (%s): POP %d rows vs baseline %d (reopts=%d)",
					qi.Name, qi.Desc, len(on.Rows), len(off.Rows), on.Reopts)
			}
		})
	}
}

func TestWorkloadTriggersReopts(t *testing.T) {
	cat := load(t)
	qs, err := Queries(cat)
	if err != nil {
		t.Fatal(err)
	}
	reopts := 0
	for _, qi := range qs[:12] {
		res, err := pop.NewRunner(cat, pop.DefaultOptions()).Run(qi.Query, nil)
		if err != nil {
			t.Fatalf("%s: %v", qi.Name, err)
		}
		reopts += res.Reopts
	}
	if reopts == 0 {
		t.Error("correlated workload should trigger at least one re-optimization in 12 queries")
	}
	t.Logf("re-optimizations over 12 queries: %d", reopts)
}
