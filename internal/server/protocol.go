package server

import (
	"fmt"

	"repro/internal/types"
)

// The wire protocol is line-delimited JSON over TCP: one Request object per
// line in, one Response object per line out, correlated by ID. Requests on a
// connection may be pipelined — the server executes them concurrently
// (subject to admission control) and responses may arrive out of order. The
// HTTP endpoint reuses the same two types, one Request per POST /query body.

// Code classifies the failure a Response carries; empty on success. It is
// a named type so switches over it (HTTP status mapping, client retry
// policy) fall under poplint's exhaustive rule: adding a code without
// updating every switch is a lint error, not a silent fallthrough.
type Code string

// Error codes a Response can carry; empty on success.
const (
	// CodeDraining rejects queries arriving after shutdown began.
	CodeDraining Code = "draining"
	// CodeBackpressure rejects a session whose admission-queue allowance is
	// exhausted; the client should finish in-flight queries before retrying.
	CodeBackpressure Code = "backpressure"
	// CodeParse reports a malformed request or SQL that failed to parse.
	CodeParse Code = "parse"
	// CodeExec reports an execution-time failure.
	CodeExec Code = "exec"
	// CodeCanceled reports a query abandoned because its context ended
	// (connection closed, deadline exceeded).
	CodeCanceled Code = "canceled"
)

// Request operations.
const (
	// OpQuery executes SQL (with optional parameter bindings).
	OpQuery = "query"
	// OpPing round-trips without touching the engine.
	OpPing = "ping"
	// OpMetrics returns the server's cumulative counters in Response.Text.
	OpMetrics = "metrics"
	// OpClose asks the server to close the connection after responding.
	OpClose = "close"
)

// ParamValue is one parameter binding; exactly one field should be set.
type ParamValue struct {
	Float *float64 `json:"float,omitempty"`
	Int   *int64   `json:"int,omitempty"`
	Str   *string  `json:"str,omitempty"`
}

// datum converts the wire value to an engine datum.
func (p ParamValue) datum() (types.Datum, error) {
	switch {
	case p.Float != nil:
		return types.NewFloat(*p.Float), nil
	case p.Int != nil:
		return types.NewInt(*p.Int), nil
	case p.Str != nil:
		return types.NewString(*p.Str), nil
	}
	return types.Datum{}, fmt.Errorf("empty parameter value")
}

// Request is one client message. Planner optionally names the
// planner/adaptivity strategy to run the query under (see pop.Strategies);
// empty means the server default (dp-pop), and an unknown name is rejected
// with CodeParse.
type Request struct {
	ID      int64        `json:"id"`
	Op      string       `json:"op"`
	SQL     string       `json:"sql,omitempty"`
	Params  []ParamValue `json:"params,omitempty"`
	Planner string       `json:"planner,omitempty"`
}

// Response is one server message. Work is the statement's simulated work in
// the engine's canonical units; it round-trips exactly through JSON (Go
// encodes float64 shortest-form and decodes it bit-identically), which the
// serving benchmark's work-identity check depends on.
type Response struct {
	ID    int64  `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Code  Code   `json:"code,omitempty"`

	Rows     []string `json:"rows,omitempty"`
	RowCount int      `json:"row_count,omitempty"`
	Text     string   `json:"text,omitempty"`

	Work             float64 `json:"work,omitempty"`
	Reopts           int     `json:"reopts,omitempty"`
	CacheHit         bool    `json:"cache_hit,omitempty"`
	CacheInvalidated bool    `json:"cache_invalidated,omitempty"`

	// WaitNS is time spent queued in admission control; ElapsedNS is total
	// server-side time including the wait.
	WaitNS    int64 `json:"wait_ns,omitempty"`
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
}

// errResponse builds a failure response, mapping known error types to their
// wire codes.
func errResponse(id int64, code Code, err error) Response {
	return Response{ID: id, OK: false, Error: err.Error(), Code: code}
}
