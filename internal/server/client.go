package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a line-JSON protocol client. It supports pipelining: Query may
// be called from concurrent goroutines over one connection, and responses
// are matched to callers by request ID. Safe for concurrent use.
type Client struct {
	conn net.Conn

	wmu sync.Mutex
	enc *json.Encoder

	mu      sync.Mutex
	nextID  int64
	pending map[int64]chan Response
	readErr error
	closed  bool

	// done is closed when readLoop exits; Close waits on it so the reader
	// goroutine is joined before Close returns.
	done chan struct{}
}

// Dial connects to a server's TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		pending: make(map[int64]chan Response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop distributes responses to their waiting callers until the
// connection closes, then fails every pending call.
func (c *Client) readLoop() {
	defer close(c.done)
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			continue
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp //poplint:allow blockingcancel pending channels are buffered (cap 1) and receive exactly one response per ID, so this send never blocks
		}
	}
	err := sc.Err()
	if err == nil {
		err = errors.New("connection closed")
	}
	c.mu.Lock()
	c.readErr = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
}

// Do sends one request and waits for its response. The request's ID is
// assigned by the client.
func (c *Client) Do(req Request) (Response, error) {
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return Response{}, err
	}
	c.nextID++
	req.ID = c.nextID
	ch := make(chan Response, 1)
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := c.enc.Encode(req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return Response{}, err
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = errors.New("connection closed")
		}
		return Response{}, err
	}
	return resp, nil
}

// Query executes SQL with optional parameter bindings. A Response with
// OK=false is returned as-is (not as an error) so callers can inspect the
// typed Code.
func (c *Client) Query(sql string, params ...ParamValue) (Response, error) {
	return c.Do(Request{Op: OpQuery, SQL: sql, Params: params})
}

// QueryPlanner is Query with an explicit planner-strategy name (see
// pop.Strategies); empty runs the server default.
func (c *Client) QueryPlanner(sql, planner string, params ...ParamValue) (Response, error) {
	return c.Do(Request{Op: OpQuery, SQL: sql, Params: params, Planner: planner})
}

// Ping round-trips the connection.
func (c *Client) Ping() error {
	resp, err := c.Do(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("ping failed: %s", resp.Error)
	}
	return nil
}

// MetricsText fetches the server's cumulative counters as rendered text.
func (c *Client) MetricsText() (string, error) {
	resp, err := c.Do(Request{Op: OpMetrics})
	if err != nil {
		return "", err
	}
	if !resp.OK {
		return "", fmt.Errorf("metrics failed: %s", resp.Error)
	}
	return resp.Text, nil
}

// Float wraps a float parameter binding.
func Float(v float64) ParamValue { return ParamValue{Float: &v} }

// Int wraps an integer parameter binding.
func Int(v int64) ParamValue { return ParamValue{Int: &v} }

// Str wraps a string parameter binding.
func Str(v string) ParamValue { return ParamValue{Str: &v} }

// Close tells the server to close the session, then closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	alive := c.readErr == nil
	c.mu.Unlock()
	if alive {
		// Best-effort goodbye; the server closes on receipt.
		_, _ = c.Do(Request{Op: OpClose})
	}
	err := c.conn.Close()
	<-c.done // join the reader
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
