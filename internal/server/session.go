package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/plancache"
	"repro/internal/pop"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

// execQuery runs one OpQuery request for the named session: admission
// control first (this is where queued queries wait and backpressured ones
// bounce), then parse, then execution through the shared plan cache with the
// scheduler as the exchange worker gate.
func (s *Server) execQuery(ctx context.Context, session string, req Request) Response {
	start := time.Now()
	release, err := s.sched.Admit(ctx, session)
	if err != nil {
		return admitError(req.ID, err)
	}
	defer release()
	wait := time.Since(start)

	q, err := sqlparse.Parse(s.cat, strings.TrimSuffix(strings.TrimSpace(req.SQL), ";"))
	if err != nil {
		return errResponse(req.ID, CodeParse, err)
	}
	params := make([]types.Datum, 0, len(req.Params))
	for i, p := range req.Params {
		d, err := p.datum()
		if err != nil {
			return errResponse(req.ID, CodeParse, fmt.Errorf("param %d: %w", i, err))
		}
		params = append(params, d)
	}

	opts := s.options()
	if req.Planner != "" {
		st, perr := pop.StrategyByName(req.Planner)
		if perr != nil {
			return errResponse(req.ID, CodeParse, perr)
		}
		opts.Planner = st
	}
	res, info, err := plancache.NewRunner(s.cache, s.cat, opts).Run(q, params)
	if err != nil {
		return errResponse(req.ID, CodeExec, err)
	}

	resp := Response{
		ID:               req.ID,
		OK:               true,
		RowCount:         len(res.Rows),
		Work:             res.Work,
		Reopts:           res.Reopts,
		CacheHit:         info.Hit,
		CacheInvalidated: info.Invalidated,
		WaitNS:           wait.Nanoseconds(),
		ElapsedNS:        time.Since(start).Nanoseconds(),
	}
	limit := len(res.Rows)
	if s.cfg.MaxRows > 0 && limit > s.cfg.MaxRows {
		limit = s.cfg.MaxRows
	}
	resp.Rows = make([]string, limit)
	for i := 0; i < limit; i++ {
		resp.Rows[i] = fmt.Sprint(res.Rows[i])
	}
	return resp
}

// admitError maps an admission failure to its wire response.
func admitError(id int64, err error) Response {
	var bp *BackpressureError
	switch {
	case errors.Is(err, ErrDraining):
		return errResponse(id, CodeDraining, err)
	case errors.As(err, &bp):
		return errResponse(id, CodeBackpressure, err)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return errResponse(id, CodeCanceled, err)
	}
	return errResponse(id, CodeExec, err)
}

// serveRequest dispatches one request to its operation handler. OpClose is
// handled by the transport (the response is written, then the connection
// closes); it reaches here only to produce the acknowledgement.
func (s *Server) serveRequest(ctx context.Context, session string, req Request) Response {
	switch req.Op {
	case OpQuery:
		return s.execQuery(ctx, session, req)
	case OpPing, OpClose, "":
		return Response{ID: req.ID, OK: true}
	case OpMetrics:
		var b strings.Builder
		s.reg.Snapshot().WriteText(&b)
		st := s.sched.Stats()
		fmt.Fprintf(&b, "%-22s %d\n", "sched peak workers", st.PeakWorkers)
		fmt.Fprintf(&b, "%-22s %d\n", "sched worker budget", st.WorkerBudget)
		fmt.Fprintf(&b, "%-22s %d\n", "sched backpressure", st.Backpressure)
		return Response{ID: req.ID, OK: true, Text: b.String()}
	}
	return errResponse(req.ID, CodeParse, fmt.Errorf("unknown op %q", req.Op))
}
