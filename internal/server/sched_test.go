package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestWorkerBudgetCAS hammers the worker pool from many goroutines and
// asserts the strict invariant: occupancy never exceeds the budget, and
// everything acquired is released.
func TestWorkerBudgetCAS(t *testing.T) {
	s := NewScheduler(SchedConfig{WorkerBudget: 7})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				got := s.AcquireWorkers(3)
				if got > 3 {
					t.Error("granted more than asked")
				}
				s.ReleaseWorkers(got)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.WorkersOut != 0 {
		t.Errorf("%d workers still outstanding", st.WorkersOut)
	}
	if st.PeakWorkers > 7 {
		t.Errorf("peak %d exceeds budget 7", st.PeakWorkers)
	}
	if st.PeakWorkers == 0 {
		t.Error("pool never used")
	}
}

// TestAcquireClampsAndInline pins the grant ladder: full grant when free,
// partial when constrained, zero (inline) when exhausted.
func TestAcquireClampsAndInline(t *testing.T) {
	s := NewScheduler(SchedConfig{WorkerBudget: 4})
	if got := s.AcquireWorkers(3); got != 3 {
		t.Fatalf("free pool granted %d, want 3", got)
	}
	if got := s.AcquireWorkers(3); got != 1 {
		t.Fatalf("constrained pool granted %d, want 1", got)
	}
	if got := s.AcquireWorkers(3); got != 0 {
		t.Fatalf("exhausted pool granted %d, want 0", got)
	}
	st := s.Stats()
	if st.DOPClamps != 2 {
		t.Errorf("clamps %d, want 2", st.DOPClamps)
	}
	if st.InlineRuns != 1 {
		t.Errorf("inline runs %d, want 1", st.InlineRuns)
	}
	s.ReleaseWorkers(4)
	if got := s.AcquireWorkers(2); got != 2 {
		t.Fatalf("released pool granted %d, want 2", got)
	}
	s.ReleaseWorkers(2)
}

// TestAdviseDOP pins the planning-side advisor: it narrows to the free
// budget, floors at 1, and never widens.
func TestAdviseDOP(t *testing.T) {
	s := NewScheduler(SchedConfig{WorkerBudget: 4})
	if got := s.AdviseDOP(8); got != 4 {
		t.Errorf("idle advise %d, want 4", got)
	}
	if got := s.AdviseDOP(3); got != 3 {
		t.Errorf("under-budget advise %d, want 3", got)
	}
	s.AcquireWorkers(4)
	if got := s.AdviseDOP(8); got != 1 {
		t.Errorf("exhausted advise %d, want 1", got)
	}
	s.ReleaseWorkers(4)
}

// TestAdmitFIFOFairness fills every run slot, queues three waiters from
// different sessions, and verifies slots hand over in arrival order.
func TestAdmitFIFOFairness(t *testing.T) {
	s := NewScheduler(SchedConfig{WorkerBudget: 4, RunSlots: 1, SessionQueue: 4})
	rel, err := s.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 3
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	rels := make([]func(), waiters)
	for i := 0; i < waiters; i++ {
		// Sequential queue entry so arrival order is deterministic.
		started := make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			close(started)
			r, err := s.Admit(context.Background(), string(rune('b'+i)))
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			rels[i] = r
			order <- i
		}(i)
		<-started
		// Wait until the waiter is actually queued before starting the next.
		deadline := time.Now().Add(2 * time.Second)
		for s.Stats().Queued != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	rel()
	for i := 0; i < waiters; i++ {
		got := <-order
		if got != i {
			t.Fatalf("slot %d handed to waiter %d, want FIFO", i, got)
		}
		rels[got]()
	}
	wg.Wait()
	st := s.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("running=%d queued=%d after all releases", st.Running, st.Queued)
	}
	if st.AdmissionWaits != waiters {
		t.Errorf("admission waits %d, want %d", st.AdmissionWaits, waiters)
	}
	if st.MaxQueueDepth != waiters {
		t.Errorf("max queue depth %d, want %d", st.MaxQueueDepth, waiters)
	}
}

// TestBackpressurePerSession verifies one session cannot queue past its
// allowance while a second session still can.
func TestBackpressurePerSession(t *testing.T) {
	s := NewScheduler(SchedConfig{WorkerBudget: 4, RunSlots: 1, SessionQueue: 2})
	rel, err := s.Admit(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Admit(ctx, "hog"); !errors.Is(err, context.Canceled) {
				t.Errorf("queued waiter: %v, want context.Canceled at teardown", err)
			}
		}()
		deadline := time.Now().Add(2 * time.Second)
		for s.Stats().Queued != i+1 {
			if time.Now().After(deadline) {
				t.Fatal("waiter never queued")
			}
			time.Sleep(time.Millisecond)
		}
	}

	_, err = s.Admit(context.Background(), "hog")
	var bp *BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("third queued query: %v, want BackpressureError", err)
	}
	if bp.Depth != 2 {
		t.Errorf("backpressure depth %d, want 2", bp.Depth)
	}

	// A different session still has queue room.
	done := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := s.Admit(ctx, "other")
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Queued != 3 {
		if time.Now().After(deadline) {
			t.Fatal("other session's waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("other session: %v, want context.Canceled at teardown", err)
	}
	wg.Wait()
	if got := s.Stats().Backpressure; got != 1 {
		t.Errorf("backpressure count %d, want 1", got)
	}
}

// TestAdmitContextAbandon cancels a queued admission and verifies the queue
// entry is removed and the slot count stays consistent — including the race
// where the slot is handed over concurrently with the cancellation.
func TestAdmitContextAbandon(t *testing.T) {
	s := NewScheduler(SchedConfig{WorkerBudget: 4, RunSlots: 1, SessionQueue: 8})
	rel, err := s.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, "b")
		errCh <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned admit: %v, want context.Canceled", err)
	}
	rel()
	// The abandoned waiter must not have consumed the slot.
	rel2, err := s.Admit(context.Background(), "c")
	if err != nil {
		t.Fatalf("slot lost to abandoned waiter: %v", err)
	}
	rel2()
	st := s.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("running=%d queued=%d, want 0/0", st.Running, st.Queued)
	}
}

// TestDrain verifies the drain protocol: queued waiters wake with
// ErrDraining, new admissions reject, and Drain returns once the last
// in-flight query releases.
func TestDrain(t *testing.T) {
	s := NewScheduler(SchedConfig{WorkerBudget: 4, RunSlots: 1, SessionQueue: 4})
	rel, err := s.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}

	queuedErr := make(chan error, 1)
	go func() {
		_, err := s.Admit(context.Background(), "b")
		queuedErr <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	if err := <-queuedErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter woke with %v, want ErrDraining", err)
	}
	if _, err := s.Admit(context.Background(), "c"); !errors.Is(err, ErrDraining) {
		t.Fatalf("new admission: %v, want ErrDraining", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v before the in-flight query finished", err)
	case <-time.After(20 * time.Millisecond):
	}
	rel()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain never returned after the last release")
	}
}

// TestDrainDeadline verifies Drain honors its context when an in-flight
// query never finishes.
func TestDrainDeadline(t *testing.T) {
	s := NewScheduler(SchedConfig{WorkerBudget: 4, RunSlots: 1})
	rel, err := s.Admit(context.Background(), "stuck")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with a stuck query: %v, want DeadlineExceeded", err)
	}
}

// TestReleaseIdempotent verifies double-calling a release function frees the
// slot once.
func TestReleaseIdempotent(t *testing.T) {
	s := NewScheduler(SchedConfig{WorkerBudget: 4, RunSlots: 2})
	rel, err := s.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel()
	if got := s.Stats().Running; got != 0 {
		t.Errorf("running %d after double release, want 0", got)
	}
}
