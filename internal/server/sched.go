// Package server is the multi-session network front end of the engine: a TCP
// line-JSON protocol and an HTTP endpoint serving concurrent sessions over
// one shared catalog, row store and plan cache. Its performance core is the
// Scheduler, a global arbiter of one bounded worker pool between inter-query
// parallelism (admission control: bounded running-query slots with a fair
// FIFO queue and per-session backpressure) and intra-query parallelism (every
// exchange acquires its workers from the pool via executor.WorkerGate and
// clamps its DOP — down to an inline zero-goroutine mode — when the pool is
// contended). The scheduler changes when and how wide a query runs, never
// what it computes: per-query simulated work stays bit-identical to library
// execution (see internal/pop's gate tests and DESIGN.md §12).
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/trace"
)

// ErrDraining is returned for queries arriving after shutdown began. The
// wire protocol maps it to the typed code "draining".
var ErrDraining = errors.New("server: draining, new queries rejected")

// BackpressureError reports a session that exceeded its admission-queue
// allowance: the session already has SessionQueue queries waiting, so this
// one is turned away instead of queued. The wire protocol maps it to the
// typed code "backpressure".
type BackpressureError struct {
	Session string
	Depth   int
}

// Error implements the error interface.
func (e *BackpressureError) Error() string {
	return fmt.Sprintf("server: session %s backpressured: %d queries already queued", e.Session, e.Depth)
}

// SchedConfig sizes the scheduler.
type SchedConfig struct {
	// WorkerBudget is the global cap on exchange workers out at once across
	// every running query. Default GOMAXPROCS.
	WorkerBudget int
	// RunSlots bounds concurrently executing queries; arrivals beyond it
	// queue FIFO. Default max(2, WorkerBudget/2).
	RunSlots int
	// SessionQueue is the per-session cap on queued admissions before new
	// arrivals from that session get a BackpressureError. Default 4.
	SessionQueue int
}

// withDefaults resolves zero fields to their documented defaults.
func (c SchedConfig) withDefaults() SchedConfig {
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.RunSlots <= 0 {
		c.RunSlots = c.WorkerBudget / 2
		if c.RunSlots < 2 {
			c.RunSlots = 2
		}
	}
	if c.SessionQueue <= 0 {
		c.SessionQueue = 4
	}
	return c
}

// waiter is one queued admission. The scheduler hands a slot over by setting
// err (nil = admitted) and closing ready, both under the scheduler mutex, so
// observing the close happens-after the write.
type waiter struct {
	session string
	ready   chan struct{}
	err     error
}

// Scheduler owns the worker pool and the admission queue. It implements
// executor.WorkerGate for intra-query width arbitration; Admit/release
// implement inter-query admission control. All methods are safe for
// concurrent use.
type Scheduler struct {
	cfg SchedConfig

	// Trace receives admission_wait / admission_reject events when non-nil
	// (dop_clamp events are emitted by the executor). Set before serving.
	Trace trace.Recorder

	// Worker-pool occupancy is a lock-free CAS loop so exchange build paths
	// never contend on the admission mutex.
	workersOut atomic.Int64
	peakOut    atomic.Int64
	clamps     atomic.Int64
	inlineRuns atomic.Int64

	mu           sync.Mutex
	running      int
	queue        []*waiter
	perSess      map[string]int
	draining     bool
	drainDone    chan struct{} // created by Drain, closed when running hits 0
	drainClosed  bool
	admitted     int64
	waits        int64
	waitNS       int64
	rejects      int64 // draining rejections
	backpressure int64
	maxDepth     int
}

// NewScheduler returns a scheduler for the given configuration (zero fields
// take their defaults).
func NewScheduler(cfg SchedConfig) *Scheduler {
	return &Scheduler{cfg: cfg.withDefaults(), perSess: make(map[string]int)}
}

// Config reports the resolved configuration.
func (s *Scheduler) Config() SchedConfig { return s.cfg }

var _ executor.WorkerGate = (*Scheduler)(nil)

// AcquireWorkers implements executor.WorkerGate: it grants up to want
// workers, never letting total occupancy exceed the budget. A zero grant
// tells the exchange to run inline. Lock-free: a CAS loop on the occupancy
// counter, so the strict invariant out+grant ≤ budget holds at every
// interleaving.
func (s *Scheduler) AcquireWorkers(want int) int {
	if want < 0 {
		want = 0
	}
	for {
		out := s.workersOut.Load()
		free := int64(s.cfg.WorkerBudget) - out
		if free <= 0 {
			s.clamps.Add(1)
			s.inlineRuns.Add(1)
			return 0
		}
		got := int64(want)
		if got > free {
			got = free
		}
		if !s.workersOut.CompareAndSwap(out, out+got) {
			continue
		}
		for {
			p := s.peakOut.Load()
			if out+got <= p || s.peakOut.CompareAndSwap(p, out+got) {
				break
			}
		}
		if int(got) < want {
			s.clamps.Add(1)
			if got == 0 {
				s.inlineRuns.Add(1)
			}
		}
		return int(got)
	}
}

// ReleaseWorkers implements executor.WorkerGate.
func (s *Scheduler) ReleaseWorkers(n int) {
	if n > 0 {
		s.workersOut.Add(-int64(n))
	}
}

// AdviseDOP is an optimizer.DOPAdvisor: it narrows planned exchange widths
// to what the pool could grant right now, so heavily contended moments plan
// narrower exchanges up front instead of discovering the clamp at execution
// time. Only meaningful for uncached planning — cached plan shapes must stay
// load-independent (DESIGN.md §12.3).
func (s *Scheduler) AdviseDOP(workers int) int {
	free := int64(s.cfg.WorkerBudget) - s.workersOut.Load()
	if free < 1 {
		return 1
	}
	if free < int64(workers) {
		return int(free)
	}
	return workers
}

// Admit blocks until the query may execute (a run slot is free or handed
// over) and returns a release function that must be called exactly once when
// the query finishes. It fails fast with ErrDraining during shutdown, with a
// *BackpressureError when the session's queue allowance is exhausted, and
// with ctx.Err() if the caller gives up while queued.
func (s *Scheduler) Admit(ctx context.Context, session string) (func(), error) {
	s.mu.Lock()
	if s.draining {
		s.rejects++
		s.mu.Unlock()
		s.rejectEvent("draining")
		return nil, ErrDraining
	}
	if s.running < s.cfg.RunSlots {
		s.running++
		s.admitted++
		s.mu.Unlock()
		return s.releaseFunc(), nil
	}
	if s.perSess[session] >= s.cfg.SessionQueue {
		depth := s.perSess[session]
		s.backpressure++
		s.mu.Unlock()
		s.rejectEvent("backpressure")
		return nil, &BackpressureError{Session: session, Depth: depth}
	}
	w := &waiter{session: session, ready: make(chan struct{})}
	s.queue = append(s.queue, w)
	s.perSess[session]++
	depth := len(s.queue)
	if depth > s.maxDepth {
		s.maxDepth = depth
	}
	s.mu.Unlock()

	start := time.Now()
	select {
	case <-w.ready:
		wait := time.Since(start)
		s.mu.Lock()
		s.waits++
		s.waitNS += wait.Nanoseconds()
		if w.err == nil {
			s.admitted++
		} else {
			s.rejects++
		}
		s.mu.Unlock()
		if w.err != nil {
			s.rejectEvent("draining")
			return nil, w.err
		}
		if tr := s.Trace; tr != nil {
			tr.Record(trace.Event{
				Kind:  trace.AdmissionWait,
				Sched: &trace.SchedInfo{WaitNS: wait.Nanoseconds(), Depth: depth},
			})
		}
		return s.releaseFunc(), nil
	case <-ctx.Done():
		s.mu.Lock()
		removed := false
		for i, qw := range s.queue {
			if qw == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				s.dropSess(w.session)
				removed = true
				break
			}
		}
		s.mu.Unlock()
		if !removed {
			// The slot was handed to this waiter concurrently: ready was
			// closed in the same critical section that removed it from the
			// queue, so this receive cannot block. Give the slot back.
			<-w.ready
			if w.err == nil {
				s.releaseSlot()
			}
		}
		return nil, ctx.Err()
	}
}

// rejectEvent emits an admission_reject trace event.
func (s *Scheduler) rejectEvent(reason string) {
	if tr := s.Trace; tr != nil {
		tr.Record(trace.Event{
			Kind:  trace.AdmissionReject,
			Sched: &trace.SchedInfo{Reason: reason},
		})
	}
}

// dropSess decrements a session's queued count, removing empty entries so
// the map does not grow with session churn. Callers hold s.mu.
func (s *Scheduler) dropSess(session string) {
	if s.perSess[session] <= 1 {
		delete(s.perSess, session)
	} else {
		s.perSess[session]--
	}
}

// releaseFunc wraps releaseSlot in a sync.Once so double release (e.g. an
// error path that also reaches a deferred release) cannot corrupt the slot
// count.
func (s *Scheduler) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(s.releaseSlot) }
}

// releaseSlot frees one run slot, handing it to the queue head (FIFO) if one
// is waiting. During a drain, queued waiters are woken with ErrDraining
// instead, and the drain waiter is signalled when the last running query
// finishes.
func (s *Scheduler) releaseSlot() {
	s.mu.Lock()
	s.running--
	for len(s.queue) > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		s.dropSess(w.session)
		if s.draining {
			w.err = ErrDraining
			close(w.ready)
			continue
		}
		s.running++
		close(w.ready)
		break
	}
	if s.draining && s.running == 0 && s.drainDone != nil && !s.drainClosed {
		s.drainClosed = true
		close(s.drainDone)
	}
	s.mu.Unlock()
}

// Drain moves the scheduler into draining mode: queued waiters are woken
// with ErrDraining, new admissions are rejected, and the call blocks until
// every running query has released its slot or the context expires.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for _, w := range s.queue {
		s.dropSess(w.session)
		s.rejects++
		w.err = ErrDraining
		close(w.ready)
	}
	s.queue = nil
	if s.running == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.drainDone == nil {
		s.drainDone = make(chan struct{})
	}
	done := s.drainDone
	s.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SchedStats is a point-in-time snapshot of the scheduler's counters.
type SchedStats struct {
	WorkerBudget    int   `json:"worker_budget"`
	WorkersOut      int64 `json:"workers_out"`
	PeakWorkers     int64 `json:"peak_workers"`
	DOPClamps       int64 `json:"dop_clamps"`
	InlineRuns      int64 `json:"inline_runs"`
	RunSlots        int   `json:"run_slots"`
	Running         int   `json:"running"`
	Queued          int   `json:"queued"`
	MaxQueueDepth   int   `json:"max_queue_depth"`
	Admitted        int64 `json:"admitted"`
	AdmissionWaits  int64 `json:"admission_waits"`
	AdmissionWaitNS int64 `json:"admission_wait_ns"`
	Rejects         int64 `json:"rejects"`
	Backpressure    int64 `json:"backpressure"`
	Draining        bool  `json:"draining"`
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	st := SchedStats{
		WorkerBudget:    s.cfg.WorkerBudget,
		WorkersOut:      s.workersOut.Load(),
		PeakWorkers:     s.peakOut.Load(),
		DOPClamps:       s.clamps.Load(),
		InlineRuns:      s.inlineRuns.Load(),
		RunSlots:        s.cfg.RunSlots,
		Running:         s.running,
		Queued:          len(s.queue),
		MaxQueueDepth:   s.maxDepth,
		Admitted:        s.admitted,
		AdmissionWaits:  s.waits,
		AdmissionWaitNS: s.waitNS,
		Rejects:         s.rejects,
		Backpressure:    s.backpressure,
		Draining:        s.draining,
	}
	s.mu.Unlock()
	return st
}
