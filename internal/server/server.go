package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/pop"
	"repro/internal/trace"
)

// Config configures a Server. The zero value serves on ephemeral ports with
// scheduler defaults.
type Config struct {
	// Addr is the TCP listen address for the line-JSON protocol
	// (default "127.0.0.1:0").
	Addr string
	// HTTPAddr, when non-empty, also serves POST /query, GET /metrics and
	// GET /healthz on this address.
	HTTPAddr string
	// Sched sizes the admission controller and worker pool.
	Sched SchedConfig
	// Workers is the per-query planned exchange width (the optimizer's
	// worker parameter); the scheduler clamps it at runtime under
	// contention. Default GOMAXPROCS, minimum 2 so exchanges exist to
	// arbitrate.
	Workers int
	// BatchSize enables vectorized execution when > 0.
	BatchSize int
	// DisableCache turns the shared plan cache off: every session runs as a
	// plain POP runner (used by the benchmark's work-identity phase — and
	// the only mode where the scheduler also advises planned DOPs, since
	// cached plan shapes must stay load-independent).
	DisableCache bool
	// MaxRows caps rows returned per response (0 = unlimited).
	MaxRows int
	// Options, when non-nil, adjusts each execution's pop.Options after the
	// server's own wiring (test and benchmark knob: forced checkpoint
	// failures, estimation policy).
	Options func(*pop.Options)
	// TraceJSONL, when non-nil, receives every execution's trace events
	// (flushed on shutdown).
	TraceJSONL *trace.JSONL
	// DrainTimeout bounds how long Shutdown waits for in-flight queries
	// (default 30s).
	DrainTimeout time.Duration
}

// Server serves concurrent sessions over one shared catalog, plan cache and
// worker scheduler.
type Server struct {
	cfg   Config
	cat   *catalog.Catalog
	cache *plancache.Cache
	reg   *metrics.Registry
	sched *Scheduler
	start time.Time

	tcpLis  net.Listener
	httpLis net.Listener
	httpSrv *http.Server

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	shutdown bool

	wg sync.WaitGroup
}

// New builds a server over the catalog. The catalog must already be loaded;
// the server never mutates it.
func New(cat *catalog.Catalog, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 2 {
		cfg.Workers = 2
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:   cfg,
		cat:   cat,
		reg:   metrics.New(),
		sched: NewScheduler(cfg.Sched),
		conns: make(map[net.Conn]struct{}),
		start: time.Now(),
	}
	if !cfg.DisableCache {
		s.cache = plancache.New()
	}
	s.sched.Trace = s.recorder()
	return s
}

// Scheduler exposes the server's scheduler (tests and the benchmark read
// its stats).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Metrics exposes the server's cumulative counters.
func (s *Server) Metrics() metrics.Snapshot { return s.reg.Snapshot() }

// recorder composes the trace sinks: the metrics registry always listens,
// the JSONL file joins when configured. The disarmed sink must not be passed
// as a typed-nil *JSONL — inside the Recorder interface it would look
// non-nil to Multi and crash on first use.
func (s *Server) recorder() trace.Recorder {
	if s.cfg.TraceJSONL != nil {
		return trace.Multi(s.reg, s.cfg.TraceJSONL)
	}
	return s.reg
}

// options assembles the pop.Options every execution runs with: POP on, the
// scheduler as the exchange worker gate, the composed trace sinks, and the
// planned width from Config.Workers. With the plan cache disabled the
// scheduler also advises planned DOPs (cached plan shapes must stay
// load-independent — see DESIGN.md §12.3).
func (s *Server) options() pop.Options {
	opts := pop.DefaultOptions()
	opts.Enabled = true
	opts.Gate = s.sched
	opts.Trace = s.recorder()
	opts.BatchSize = s.cfg.BatchSize
	workers := s.cfg.Workers
	advise := s.cfg.DisableCache
	sched := s.sched
	opts.Configure = func(o *optimizer.Optimizer) {
		o.Model.Params.Workers = workers
		if advise {
			o.DOPAdvisor = sched.AdviseDOP
		}
	}
	if s.cfg.Options != nil {
		s.cfg.Options(&opts)
	}
	return opts
}

// Start begins listening and serving. It returns once the listeners are
// bound; serving continues on background goroutines until Shutdown.
func (s *Server) Start() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.tcpLis = lis
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(lis)
	}()

	if s.cfg.HTTPAddr != "" {
		hl, err := net.Listen("tcp", s.cfg.HTTPAddr)
		if err != nil {
			if cerr := lis.Close(); cerr != nil {
				return errors.Join(err, cerr)
			}
			return err
		}
		s.httpLis = hl
		mux := http.NewServeMux()
		mux.HandleFunc("/query", s.handleHTTPQuery)
		mux.HandleFunc("/metrics", s.handleHTTPMetrics)
		mux.HandleFunc("/healthz", s.handleHTTPHealth)
		s.httpSrv = &http.Server{Handler: mux}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.httpSrv.Serve(hl); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "popserver: http:", err)
			}
		}()
	}
	return nil
}

// Addr reports the bound TCP address (useful with ":0").
func (s *Server) Addr() string {
	if s.tcpLis == nil {
		return ""
	}
	return s.tcpLis.Addr().String()
}

// HTTPAddr reports the bound HTTP address, or "" when HTTP is off.
func (s *Server) HTTPAddr() string {
	if s.httpLis == nil {
		return ""
	}
	return s.httpLis.Addr().String()
}

// acceptLoop accepts TCP connections until the listener closes.
func (s *Server) acceptLoop(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			if cerr := conn.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "popserver: close:", cerr)
			}
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// dropConn unregisters and closes a connection.
func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		fmt.Fprintln(os.Stderr, "popserver: close:", err)
	}
}

// serveConn runs one TCP session: requests are read line by line and
// executed on per-request goroutines so a session can pipeline queries (the
// scheduler's per-session queue allowance is what bounds how far ahead it
// can run); responses are serialized by a write mutex. The connection's
// context is canceled when the reader exits, unblocking any queued
// admissions.
func (s *Server) serveConn(conn net.Conn) {
	defer s.dropConn(conn)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	session := conn.RemoteAddr().String()

	var wmu sync.Mutex
	enc := json.NewEncoder(conn)
	send := func(resp Response) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := enc.Encode(resp); err != nil && ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintln(os.Stderr, "popserver: write:", err)
		}
	}

	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			send(errResponse(0, CodeParse, err))
			continue
		}
		if req.Op == OpClose {
			send(Response{ID: req.ID, OK: true})
			return
		}
		reqWG.Add(1)
		go func(req Request) {
			defer reqWG.Done()
			send(s.serveRequest(ctx, session, req))
		}(req)
	}
}

// handleHTTPQuery serves POST /query: a Request body, a Response body.
func (s *Server) handleHTTPQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse(0, CodeParse, err))
		return
	}
	if req.Op == "" {
		req.Op = OpQuery
	}
	resp := s.serveRequest(r.Context(), "http:"+r.RemoteAddr, req)
	status := http.StatusOK
	switch resp.Code {
	case CodeDraining:
		status = http.StatusServiceUnavailable
	case CodeBackpressure:
		status = http.StatusTooManyRequests
	case CodeParse:
		status = http.StatusBadRequest
	case CodeExec, CodeCanceled:
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, resp)
}

// httpMetrics is the GET /metrics payload.
type httpMetrics struct {
	Engine   metrics.Snapshot `json:"engine"`
	Sched    SchedStats       `json:"sched"`
	UptimeNS int64            `json:"uptime_ns"`
}

// handleHTTPMetrics serves GET /metrics.
func (s *Server) handleHTTPMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, httpMetrics{
		Engine:   s.reg.Snapshot(),
		Sched:    s.sched.Stats(),
		UptimeNS: time.Since(s.start).Nanoseconds(),
	})
}

// handleHTTPHealth serves GET /healthz: 200 while serving, 503 once
// draining.
func (s *Server) handleHTTPHealth(w http.ResponseWriter, r *http.Request) {
	if s.sched.Stats().Draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if _, err := io.WriteString(w, "ok\n"); err != nil {
		fmt.Fprintln(os.Stderr, "popserver: healthz:", err)
	}
}

// writeJSON encodes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "popserver: write:", err)
	}
}

// Shutdown drains and stops the server: the scheduler rejects new
// admissions with ErrDraining and in-flight queries run to completion
// (bounded by DrainTimeout), then listeners and connections close and the
// trace sink flushes. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	s.mu.Unlock()

	dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	drainErr := s.sched.Drain(dctx)

	var errs []error
	if drainErr != nil {
		errs = append(errs, fmt.Errorf("drain: %w", drainErr))
	}
	if s.tcpLis != nil {
		if err := s.tcpLis.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			errs = append(errs, err)
		}
	}
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			errs = append(errs, err)
		}
	}
	s.mu.Lock()
	for conn := range s.conns {
		if err := conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			errs = append(errs, err)
		}
	}
	s.conns = make(map[net.Conn]struct{})
	s.mu.Unlock()
	s.wg.Wait()

	if s.cfg.TraceJSONL != nil {
		if err := s.cfg.TraceJSONL.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("trace flush: %w", err))
		}
	}
	return errors.Join(errs...)
}
