package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/sqlparse"
	"repro/internal/tpch"
	"repro/internal/trace"
	"repro/internal/types"
)

// q10SQL is the parameterized serving workload: a three-way TPC-H join with
// a quantity predicate whose selectivity the binding controls.
const q10SQL = `SELECT c_name, SUM(l_extendedprice) AS revenue
	FROM customer, orders, lineitem
	WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_quantity <= ?
	GROUP BY c_name`

// tpchCat loads a small TPC-H catalog.
func tpchCat(t *testing.T, sf float64) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if err := tpch.Load(cat, tpch.Config{ScaleFactor: sf, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	return cat
}

// startServer builds and starts a server, registering shutdown cleanup.
func startServer(t *testing.T, cat *catalog.Catalog, cfg Config) *Server {
	t.Helper()
	s := New(cat, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

// forceViolation is the Config.Options knob that makes every execution's
// first checkpoint fail, guaranteeing a genuine re-optimization per query.
func forceViolation(o *pop.Options) {
	o.Policy.FailCheckIDs = map[int]bool{0: true}
}

// TestServer32ConcurrentSessions is the serving-side concurrency pin: 32 TCP
// sessions run the same parameterized join, every execution is forced
// through a re-optimization, and the shared worker pool's peak occupancy
// must respect the budget while every session gets the right answer.
func TestServer32ConcurrentSessions(t *testing.T) {
	cat := tpchCat(t, 0.002)
	const budget = 6
	srv := startServer(t, cat, Config{
		Workers: 4,
		Sched:   SchedConfig{WorkerBudget: budget, RunSlots: 8, SessionQueue: 4},
		Options: forceViolation,
	})

	// Library baseline for the row count (POP preserves results across
	// re-optimizations, so every session must match).
	q, err := sqlparse.Parse(cat, q10SQL)
	if err != nil {
		t.Fatal(err)
	}
	baseOpts := pop.DefaultOptions()
	baseOpts.Configure = func(o *optimizer.Optimizer) { o.Model.Params.Workers = 4 }
	base, err := pop.NewRunner(cat, baseOpts).Run(q, []types.Datum{types.NewFloat(50)})
	if err != nil {
		t.Fatal(err)
	}
	want := len(base.Rows)

	const sessions = 32
	resps := make([]Response, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer func() { errs[i] = c.Close() }()
			resps[i], errs[i] = c.Query(q10SQL, Float(50))
		}(i)
	}
	wg.Wait()

	reopts := 0
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !resps[i].OK {
			t.Fatalf("session %d: %s (%s)", i, resps[i].Error, resps[i].Code)
		}
		if resps[i].RowCount != want {
			t.Fatalf("session %d returned %d rows, baseline %d", i, resps[i].RowCount, want)
		}
		reopts += resps[i].Reopts
	}
	if reopts == 0 {
		t.Error("no session re-optimized; the workload must exercise POP under concurrency")
	}

	st := srv.Scheduler().Stats()
	if st.WorkersOut != 0 {
		t.Errorf("%d workers still outstanding", st.WorkersOut)
	}
	if st.PeakWorkers > budget {
		t.Errorf("peak pool occupancy %d exceeds budget %d", st.PeakWorkers, budget)
	}
	if st.PeakWorkers == 0 {
		t.Error("pool never used")
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("running=%d queued=%d after all sessions", st.Running, st.Queued)
	}
	m := srv.Metrics()
	if m.Queries != sessions {
		t.Errorf("metrics counted %d queries, want %d", m.Queries, sessions)
	}
	if m.Reoptimizations == 0 {
		t.Error("metrics saw no re-optimizations")
	}
}

// TestServerWorkIdentity pins the serving-side work contract end to end:
// with the plan cache disabled and parameter-bound estimation on (so no
// checkpoint fires mid-stream), a statement executed through the server —
// admission control, worker-pool clamping and the JSON wire round-trip
// included — reports simulated work bit-identical to a single-session
// library execution of the same binding.
func TestServerWorkIdentity(t *testing.T) {
	cat := tpchCat(t, 0.002)
	srv := startServer(t, cat, Config{
		Workers:      4,
		DisableCache: true,
		Sched:        SchedConfig{WorkerBudget: 2, RunSlots: 4},
		Options:      func(o *pop.Options) { o.BindParamEstimates = true },
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	}()

	q, err := sqlparse.Parse(cat, q10SQL)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, qty := range []float64{10, 25, 50} {
		opts := pop.DefaultOptions()
		opts.Configure = func(o *optimizer.Optimizer) { o.Model.Params.Workers = 4 }
		opts.BindParamEstimates = true
		lib, err := pop.NewRunner(cat, opts).Run(q, []types.Datum{types.NewFloat(qty)})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Query(q10SQL, Float(qty))
		if err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("qty=%v: %s (%s)", qty, resp.Error, resp.Code)
		}
		if lib.Reopts > 0 || resp.Reopts > 0 {
			// Work through a mid-stream violation is not DOP-comparable
			// (see the pop gate tests); identity is asserted on the
			// violation-free bindings.
			continue
		}
		checked++
		if resp.Work != lib.Work {
			t.Errorf("qty=%v: server work %v != library work %v", qty, resp.Work, lib.Work)
		}
		if resp.RowCount != len(lib.Rows) {
			t.Errorf("qty=%v: server %d rows, library %d", qty, resp.RowCount, len(lib.Rows))
		}
	}
	if checked == 0 {
		t.Fatal("every binding re-optimized; no violation-free binding to check identity on")
	}
	if srv.Metrics().DOPClamps == 0 {
		t.Error("budget 2 never clamped a DOP-4 plan; the gate was not exercised")
	}
}

// blockingOptions returns a Config.Options hook whose executions block
// inside the optimizer until release is closed, plus a channel that closes
// when the first execution reaches it — a deterministic way to hold a query
// in flight.
func blockingOptions(release <-chan struct{}) (func(*pop.Options), <-chan struct{}) {
	inFlight := make(chan struct{})
	var once sync.Once
	return func(o *pop.Options) {
		inner := o.Configure
		o.Configure = func(opt *optimizer.Optimizer) {
			if inner != nil {
				inner(opt)
			}
			once.Do(func() { close(inFlight) })
			<-release
		}
	}, inFlight
}

// TestServerGracefulShutdown pins the drain protocol over the wire: an
// in-flight query completes, a query arriving during the drain is rejected
// with the typed "draining" code, Shutdown returns cleanly, and the trace
// sink is flushed.
func TestServerGracefulShutdown(t *testing.T) {
	cat := tpchCat(t, 0.002)
	release := make(chan struct{})
	hook, inFlight := blockingOptions(release)
	var buf bytes.Buffer
	s := New(cat, Config{
		Workers:    4,
		Sched:      SchedConfig{WorkerBudget: 4, RunSlots: 2},
		Options:    hook,
		TraceJSONL: trace.NewJSONL(&buf),
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	cA, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cB, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}

	inFlightResp := make(chan Response, 1)
	go func() {
		resp, err := cA.Query(q10SQL, Float(25))
		if err != nil {
			t.Errorf("in-flight query: %v", err)
		}
		inFlightResp <- resp
	}()
	<-inFlight

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Scheduler().Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("scheduler never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	// A query arriving mid-drain gets the typed rejection.
	resp, err := cB.Query(q10SQL, Float(25))
	if err != nil {
		t.Fatalf("mid-drain query: %v", err)
	}
	if resp.OK || resp.Code != CodeDraining {
		t.Fatalf("mid-drain query: ok=%v code=%q, want draining rejection", resp.OK, resp.Code)
	}

	// Let the in-flight query finish; it must complete normally.
	close(release)
	got := <-inFlightResp
	if !got.OK {
		t.Fatalf("in-flight query failed during drain: %s (%s)", got.Error, got.Code)
	}
	if got.RowCount == 0 {
		t.Error("in-flight query returned no rows")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("trace sink not flushed on shutdown")
	}
	if err := cA.Close(); err != nil {
		t.Logf("client A close after server shutdown: %v", err)
	}
	if err := cB.Close(); err != nil {
		t.Logf("client B close after server shutdown: %v", err)
	}
}

// TestServerBackpressure pins the per-session queue allowance over the
// wire: with one run slot held and a one-deep session queue, a session's
// third concurrent query bounces with the typed "backpressure" code.
func TestServerBackpressure(t *testing.T) {
	cat := tpchCat(t, 0.002)
	release := make(chan struct{})
	hook, inFlight := blockingOptions(release)
	srv := startServer(t, cat, Config{
		Workers: 4,
		Sched:   SchedConfig{WorkerBudget: 4, RunSlots: 1, SessionQueue: 1},
		Options: hook,
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	}()

	var wg sync.WaitGroup
	results := make([]Response, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Query(q10SQL, Float(25))
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			results[i] = resp
		}(i)
		if i == 0 {
			<-inFlight
		} else {
			deadline := time.Now().Add(5 * time.Second)
			for srv.Scheduler().Stats().Queued != 1 {
				if time.Now().After(deadline) {
					t.Fatal("second query never queued")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}

	resp, err := c.Query(q10SQL, Float(25))
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeBackpressure {
		t.Fatalf("third query: ok=%v code=%q, want backpressure rejection", resp.OK, resp.Code)
	}

	close(release)
	wg.Wait()
	for i, r := range results {
		if !r.OK {
			t.Errorf("query %d failed: %s (%s)", i, r.Error, r.Code)
		}
	}
	if got := srv.Scheduler().Stats().Backpressure; got != 1 {
		t.Errorf("backpressure count %d, want 1", got)
	}
}

// TestServerHTTP smoke-tests the HTTP endpoint: POST /query executes, GET
// /metrics returns both engine and scheduler counters, and /healthz flips
// to 503 once draining.
func TestServerHTTP(t *testing.T) {
	cat := tpchCat(t, 0.002)
	s := New(cat, Config{Workers: 4, HTTPAddr: "127.0.0.1:0"})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.HTTPAddr()

	qty := 25.0
	body, err := json.Marshal(Request{Op: OpQuery, SQL: q10SQL, Params: []ParamValue{{Float: &qty}}})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	err = json.NewDecoder(hr.Body).Decode(&resp)
	if cerr := hr.Body.Close(); cerr != nil {
		t.Error(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK || !resp.OK {
		t.Fatalf("POST /query: status=%d ok=%v err=%s", hr.StatusCode, resp.OK, resp.Error)
	}
	if resp.RowCount == 0 || len(resp.Rows) == 0 {
		t.Error("POST /query returned no rows")
	}

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m httpMetrics
	err = json.NewDecoder(mr.Body).Decode(&m)
	if cerr := mr.Body.Close(); cerr != nil {
		t.Error(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if m.Engine.Queries != 1 {
		t.Errorf("GET /metrics: %d queries, want 1", m.Engine.Queries)
	}
	if m.Sched.WorkerBudget == 0 {
		t.Error("GET /metrics: scheduler stats missing")
	}

	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if cerr := hz.Body.Close(); cerr != nil {
		t.Error(cerr)
	}
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while serving: %d", hz.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerParseErrors verifies malformed SQL and unknown ops map to the
// "parse" code without killing the connection.
func TestServerParseErrors(t *testing.T) {
	cat := tpchCat(t, 0.002)
	srv := startServer(t, cat, Config{Workers: 4})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Error(err)
		}
	}()

	resp, err := c.Query("SELECT nope FROM nowhere")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeParse {
		t.Errorf("bad SQL: ok=%v code=%q, want parse error", resp.OK, resp.Code)
	}
	if _, err := c.Do(Request{Op: "frobnicate"}); err != nil {
		t.Fatal(err)
	}
	// The connection survives: a good query still works.
	resp, err = c.Query("SELECT COUNT(*) AS n FROM nation")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.RowCount != 1 {
		t.Errorf("recovery query: ok=%v rows=%d: %s", resp.OK, resp.RowCount, resp.Error)
	}
	if len(resp.Rows) != 1 || !strings.Contains(fmt.Sprint(resp.Rows[0]), "25") {
		t.Errorf("nation count row = %v, want 25", resp.Rows)
	}
}
