package repro

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs is the doc-lint gate: every package under internal/ and
// cmd/ must carry a godoc package comment, and the comment must open with
// the canonical "Package <name>" / "Command <name>" form so go doc renders
// it. CI runs this via `go test -run TestPackageDocs .`.
func TestPackageDocs(t *testing.T) {
	fset := token.NewFileSet()
	seen := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		top := strings.Split(filepath.ToSlash(path), "/")[0]
		if top != "internal" && top != "cmd" {
			return nil
		}
		dir := filepath.Dir(path)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return err
		}
		if f.Doc == nil {
			return nil
		}
		if seen[dir] {
			t.Errorf("%s: package %s documented in more than one file", path, f.Name.Name)
		}
		seen[dir] = true
		doc := f.Doc.Text()
		wantPrefix := "Package " + f.Name.Name
		if f.Name.Name == "main" {
			wantPrefix = "Command "
		}
		if !strings.HasPrefix(doc, wantPrefix) {
			t.Errorf("%s: package comment must start with %q, got %q",
				path, wantPrefix, firstLine(doc))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every package directory must have exactly one documented file.
	err = filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		name := d.Name()
		if name == "testdata" || strings.HasPrefix(name, ".") {
			return filepath.SkipDir
		}
		top := strings.Split(filepath.ToSlash(path), "/")[0]
		if top != "internal" && top != "cmd" {
			return nil
		}
		if !hasGoSource(t, path) {
			return nil
		}
		if !seen[path] {
			t.Errorf("%s: package has no godoc package comment", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func hasGoSource(t *testing.T, dir string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
