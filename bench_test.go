// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per exhibit) plus the ablation studies
// of DESIGN.md §4. Results that matter are reported as custom metrics in
// deterministic simulated work units; wall-clock ns/op confirms the engine
// itself is fast.
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dmv"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/harness"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/pop"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/tpch"
	"repro/internal/types"
)

// Shared fixtures, loaded once.
var (
	tpchOnce sync.Once
	tpchDB   *catalog.Catalog

	dmvOnce sync.Once
	dmvDB   *catalog.Catalog
	dmvQS   []dmv.QueryInfo
)

func tpchFixture(b *testing.B) *catalog.Catalog {
	b.Helper()
	tpchOnce.Do(func() {
		tpchDB = catalog.New()
		if err := tpch.Load(tpchDB, tpch.Config{ScaleFactor: 0.003, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	})
	return tpchDB
}

func dmvFixture(b *testing.B) (*catalog.Catalog, []dmv.QueryInfo) {
	b.Helper()
	dmvOnce.Do(func() {
		dmvDB = catalog.New()
		if err := dmv.Load(dmvDB, dmv.Config{Scale: 0.3, Seed: 17}); err != nil {
			b.Fatal(err)
		}
		var err error
		dmvQS, err = dmv.Queries(dmvDB)
		if err != nil {
			b.Fatal(err)
		}
	})
	return dmvDB, dmvQS
}

// BenchmarkTable1CheckpointPlacement regenerates Table 1's subject matter:
// it measures the checkpoint-placement post-pass over the Q5 plan and
// reports how many checkpoints each flavor family places.
func BenchmarkTable1CheckpointPlacement(b *testing.B) {
	cat := tpchFixture(b)
	queries, err := tpch.Queries(cat)
	if err != nil {
		b.Fatal(err)
	}
	q := queries["Q5"]
	plan, err := optimizer.New(cat).Optimize(q)
	if err != nil {
		b.Fatal(err)
	}
	pol := pop.Policy{LC: true, LCEM: true, RequireBoundedRange: false}
	var checks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, checks = pop.Place(plan, q, pol)
	}
	b.ReportMetric(float64(checks), "checkpoints")
}

// BenchmarkFig11Robustness regenerates Figure 11 and reports the headline
// series values at 100% selectivity.
func BenchmarkFig11Robustness(b *testing.B) {
	cat := tpchFixture(b)
	var points []harness.Fig11Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = harness.Fig11(cat, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := points[len(points)-1]
	b.ReportMetric(last.POPDefault, "work_POP")
	b.ReportMetric(last.NoPOPDefault, "work_static")
	b.ReportMetric(last.Optimal, "work_optimal")
	b.ReportMetric(float64(harness.DistinctOptimalPlans(points)), "optimal_plans")
}

// BenchmarkFig12LCOverhead regenerates Figure 12 and reports the mean
// normalized execution time of a dummy re-optimization (paper: ~1.02-1.03).
func BenchmarkFig12LCOverhead(b *testing.B) {
	cat := tpchFixture(b)
	var bars []harness.Fig12Bar
	var err error
	for i := 0; i < b.N; i++ {
		bars, err = harness.Fig12(cat)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(bars) == 0 {
		b.Fatal("no bars")
	}
	sum := 0.0
	for _, bar := range bars {
		sum += bar.Normalized
	}
	b.ReportMetric(sum/float64(len(bars)), "mean_normalized")
	b.ReportMetric(float64(len(bars)), "bars")
}

// BenchmarkFig13LCEMOverhead regenerates Figure 13 and reports the worst
// LCEM materialization overhead (paper: ≤ ~1.03).
func BenchmarkFig13LCEMOverhead(b *testing.B) {
	cat := tpchFixture(b)
	var rows []harness.Fig13Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.Fig13(cat)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		if r.Overhead > worst {
			worst = r.Overhead
		}
	}
	b.ReportMetric(worst, "worst_overhead")
}

// BenchmarkFig14Opportunities regenerates Figure 14 and reports how many
// checkpoint opportunities occur in the first half of execution.
func BenchmarkFig14Opportunities(b *testing.B) {
	cat := tpchFixture(b)
	var points []harness.Fig14Point
	var err error
	for i := 0; i < b.N; i++ {
		points, err = harness.Fig14(cat)
		if err != nil {
			b.Fatal(err)
		}
	}
	early := 0
	for _, p := range points {
		if p.Start < 0.5 {
			early++
		}
	}
	b.ReportMetric(float64(len(points)), "opportunities")
	b.ReportMetric(float64(early), "in_first_half")
}

// BenchmarkFig15DMV regenerates the Figure 15 scatter over a deterministic
// workload subset and reports aggregate work with and without POP.
func BenchmarkFig15DMV(b *testing.B) {
	cat, qs := dmvFixture(b)
	subset := qs[:13]
	var results []harness.DMVResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = harness.DMVStudy(cat, subset)
		if err != nil {
			b.Fatal(err)
		}
	}
	var off, on float64
	for _, r := range results {
		off += r.WorkOff
		on += r.WorkOn
	}
	b.ReportMetric(off, "work_static_total")
	b.ReportMetric(on, "work_POP_total")
}

// BenchmarkFig16Speedups regenerates Figure 16's summary statistics.
func BenchmarkFig16Speedups(b *testing.B) {
	cat, qs := dmvFixture(b)
	subset := qs[:13]
	var s harness.DMVSummary
	for i := 0; i < b.N; i++ {
		results, err := harness.DMVStudy(cat, subset)
		if err != nil {
			b.Fatal(err)
		}
		s = harness.Summarize(results)
	}
	b.ReportMetric(float64(s.Improved), "improved")
	b.ReportMetric(float64(s.Regressed), "regressed")
	b.ReportMetric(s.MaxSpeedup, "max_speedup")
	b.ReportMetric(s.MaxRegression, "max_regression")
}

// --------------------------------------------------------------------------
// Ablations (DESIGN.md §4).

// fig11Run executes Q10-with-marker at the given l_quantity binding under
// the given policy and returns the total work and re-optimization count.
func fig11Run(b *testing.B, pol pop.Policy, qty float64) (float64, int) {
	b.Helper()
	cat := tpchFixture(b)
	q, err := tpch.Q10Param(cat)
	if err != nil {
		b.Fatal(err)
	}
	opts := pop.Options{Enabled: true, Policy: pol, MaxReopts: 3}
	res, err := pop.NewRunner(cat, opts).Run(q, []types.Datum{types.NewFloat(qty)})
	if err != nil {
		b.Fatal(err)
	}
	return res.Work, res.Reopts
}

// BenchmarkAblationThresholds compares validity-range check ranges against
// the ad-hoc fixed error thresholds of [KD98] in two regimes:
//
//   - high selectivity (qty=50): the plan must change. A loose fixed
//     threshold (1000x) misses the change entirely and runs the bad plan.
//   - mid selectivity (qty=2.5): the estimates are near-correct and the plan is
//     optimal. A tight fixed threshold (1.2x) still fires (some edge is always
//     slightly off) and re-optimizes needlessly; validity ranges hold.
func BenchmarkAblationThresholds(b *testing.B) {
	var wValidityHi, wLooseHi, wValidityMid, wTightMid float64
	var rValidityHi, rLooseHi, rValidityMid, rTightMid int
	for i := 0; i < b.N; i++ {
		wValidityHi, rValidityHi = fig11Run(b, pop.DefaultPolicy(), 50)
		pol := pop.DefaultPolicy()
		pol.FixedThresholdFactor = 1000
		wLooseHi, rLooseHi = fig11Run(b, pol, 50)

		wValidityMid, rValidityMid = fig11Run(b, pop.DefaultPolicy(), 2.5)
		pol = pop.DefaultPolicy()
		pol.FixedThresholdFactor = 1.2
		wTightMid, rTightMid = fig11Run(b, pol, 2.5)
	}
	b.ReportMetric(wValidityHi, "hi_work_validity")
	b.ReportMetric(wLooseHi, "hi_work_fixed1000x")
	b.ReportMetric(float64(rValidityHi), "hi_reopts_validity")
	b.ReportMetric(float64(rLooseHi), "hi_reopts_fixed1000x")
	b.ReportMetric(wValidityMid, "mid_work_validity")
	b.ReportMetric(wTightMid, "mid_work_fixed1.2x")
	b.ReportMetric(float64(rValidityMid), "mid_reopts_validity")
	b.ReportMetric(float64(rTightMid), "mid_reopts_fixed1.2x")
}

// BenchmarkAblationMVReuse measures the value of offering intermediate
// results to the optimizer as materialized views during re-optimization.
func BenchmarkAblationMVReuse(b *testing.B) {
	cat, qs := dmvFixture(b)
	q := qs[1].Query // triple-correlated combo: always re-optimizes
	var with, without float64
	for i := 0; i < b.N; i++ {
		res, err := pop.NewRunner(cat, pop.DefaultOptions()).Run(q, nil)
		if err != nil {
			b.Fatal(err)
		}
		with = res.Work
		opts := pop.DefaultOptions()
		opts.Configure = func(o *optimizer.Optimizer) { o.DisableMVReuse = true }
		res, err = pop.NewRunner(cat, opts).Run(q, nil)
		if err != nil {
			b.Fatal(err)
		}
		without = res.Work
	}
	b.ReportMetric(with, "work_with_reuse")
	b.ReportMetric(without, "work_without_reuse")
}

// BenchmarkAblationEagerVsLazy compares LCEM (lazy, materialize first)
// against ECB (eager, fire mid-buffer) on a plan whose outer blows up.
func BenchmarkAblationEagerVsLazy(b *testing.B) {
	cat, qs := dmvFixture(b)
	q := qs[1].Query
	var lazy, eager float64
	for i := 0; i < b.N; i++ {
		opts := pop.DefaultOptions() // LC + LCEM
		res, err := pop.NewRunner(cat, opts).Run(q, nil)
		if err != nil {
			b.Fatal(err)
		}
		lazy = res.Work
		opts = pop.DefaultOptions()
		opts.Policy.LCEM = false
		opts.Policy.ECB = true
		res, err = pop.NewRunner(cat, opts).Run(q, nil)
		if err != nil {
			b.Fatal(err)
		}
		eager = res.Work
	}
	b.ReportMetric(lazy, "work_LCEM")
	b.ReportMetric(eager, "work_ECB")
}

// --------------------------------------------------------------------------
// Engine micro-benchmarks: wall-clock sanity of the substrates.

// BenchmarkOptimizeQ5 measures full DP optimization (with validity-range
// sensitivity analysis) of a six-way join.
func BenchmarkOptimizeQ5(b *testing.B) {
	cat := tpchFixture(b)
	queries, err := tpch.Queries(cat)
	if err != nil {
		b.Fatal(err)
	}
	q := queries["Q5"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := optimizer.New(cat).Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteQ3 measures end-to-end execution of Q3 without POP.
func BenchmarkExecuteQ3(b *testing.B) {
	cat := tpchFixture(b)
	queries, err := tpch.Queries(cat)
	if err != nil {
		b.Fatal(err)
	}
	q := queries["Q3"]
	opt := optimizer.New(cat)
	plan, err := opt.Optimize(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := executor.NewExecutor(cat, q, nil, opt.Model.Params, &executor.Meter{})
		if err != nil {
			b.Fatal(err)
		}
		root, err := ex.Build(plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := executor.Run(root); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchExecution compares row-at-a-time against batch-at-a-time
// execution of the Q10-shaped POP pipeline at batch sizes {1, 64, 1024}.
// Before timing, it asserts the vectorization contract: the simulated work
// total is bit-identical and the result multiset equal across every mode.
// allocs/op and ns/op show what batching buys.
func BenchmarkBatchExecution(b *testing.B) {
	cat := tpchFixture(b)
	q, err := tpch.Q10Param(cat)
	if err != nil {
		b.Fatal(err)
	}
	params := []types.Datum{types.NewFloat(25)}

	run := func(b *testing.B, batchSize int) *pop.Result {
		opts := pop.DefaultOptions()
		opts.BatchSize = batchSize
		res, err := pop.NewRunner(cat, opts).Run(q, params)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}

	want := run(b, 0)
	if len(want.Rows) == 0 {
		b.Fatal("Q10 produced no rows")
	}
	wantRows := benchCanon(want.Rows)
	for _, size := range []int{1, 64, 1024} {
		got := run(b, size)
		if got.Work != want.Work {
			b.Fatalf("batch=%d work %v differs from row-mode work %v", size, got.Work, want.Work)
		}
		gotRows := benchCanon(got.Rows)
		if len(gotRows) != len(wantRows) {
			b.Fatalf("batch=%d returned %d rows, row mode returned %d", size, len(gotRows), len(wantRows))
		}
		for i := range gotRows {
			if gotRows[i] != wantRows[i] {
				b.Fatalf("batch=%d row %d: got %s, want %s", size, i, gotRows[i], wantRows[i])
			}
		}
	}

	for _, size := range []int{0, 1, 64, 1024} {
		name := "row"
		if size > 0 {
			name = fmt.Sprintf("batch=%d", size)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var res *pop.Result
			for i := 0; i < b.N; i++ {
				res = run(b, size)
			}
			b.ReportMetric(res.Work, "work_units")
			b.ReportMetric(float64(len(res.Rows)), "rows")
		})
	}
}

// --------------------------------------------------------------------------
// Parallel execution (exchange operators / partitioned hash join).

var (
	parOnce sync.Once
	parDB   *catalog.Catalog
)

// parallelFixture loads a larger TPC-H instance (~120k lineitem rows) so
// per-worker morsel stripes carry enough rows for wall-clock scaling to show
// above the exchange setup overhead.
func parallelFixture(b *testing.B) *catalog.Catalog {
	b.Helper()
	parOnce.Do(func() {
		parDB = catalog.New()
		if err := tpch.Load(parDB, tpch.Config{ScaleFactor: 0.02, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	})
	return parDB
}

// parallelJoinQuery is a TPC-H-style selective join: every lineitem and
// orders row is scanned and probed, few rows survive to cross the gather.
func parallelJoinQuery(b *testing.B, cat *catalog.Catalog) *logical.Query {
	b.Helper()
	bq := logical.NewBuilder(cat)
	bq.AddTable("lineitem", "l")
	bq.AddTable("orders", "o")
	bq.Where(&expr.Cmp{Op: expr.EQ, L: bq.Col("l", "l_orderkey"), R: bq.Col("o", "o_orderkey")})
	bq.Where(&expr.Cmp{Op: expr.GT, L: bq.Col("l", "l_quantity"), R: &expr.Const{Val: types.NewFloat(45)}})
	bq.SelectCol("l", "l_orderkey")
	bq.SelectCol("l", "l_quantity")
	bq.SelectCol("o", "o_totalprice")
	q, err := bq.Build()
	if err != nil {
		b.Fatal(err)
	}
	return q
}

func benchCanon(rows []schema.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// BenchmarkParallelHashJoin executes one parallel plan shape (Workers=4) at
// several DOPs. Before timing, it asserts the determinism contract: the
// result multiset and the simulated work total are identical at every DOP.
// The sub-benchmark ns/op show the wall-clock scaling parallelism buys.
func BenchmarkParallelHashJoin(b *testing.B) {
	cat := parallelFixture(b)
	q := parallelJoinQuery(b, cat)
	opt := optimizer.New(cat)
	opt.DisableNLJN = true
	opt.DisableMGJN = true
	opt.Model.Params.Workers = 4
	plan, err := opt.Optimize(q)
	if err != nil {
		b.Fatal(err)
	}
	if !strings.Contains(optimizer.Explain(plan, q), "XCHG") {
		b.Fatalf("plan is not parallel:\n%s", optimizer.Explain(plan, q))
	}

	run := func(b *testing.B, dop int) ([]schema.Row, float64) {
		meter := &executor.Meter{}
		ex, err := executor.NewExecutor(cat, q, nil, opt.Model.Params, meter)
		if err != nil {
			b.Fatal(err)
		}
		ex.DOP = dop
		root, err := ex.Build(plan)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := executor.Run(root)
		if err != nil {
			b.Fatal(err)
		}
		return rows, meter.Work()
	}

	wantRows, wantWork := run(b, 1)
	if len(wantRows) == 0 {
		b.Fatal("join produced no rows")
	}
	want := benchCanon(wantRows)
	for _, dop := range []int{2, 4, 8} {
		rows, work := run(b, dop)
		if work != wantWork {
			b.Fatalf("dop=%d work %v differs from dop=1 work %v", dop, work, wantWork)
		}
		got := benchCanon(rows)
		if len(got) != len(want) {
			b.Fatalf("dop=%d returned %d rows, dop=1 returned %d", dop, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				b.Fatalf("dop=%d row %d: got %s, want %s", dop, i, got[i], want[i])
			}
		}
	}

	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dop=%d", dop), func(b *testing.B) {
			var work float64
			var nrows int
			for i := 0; i < b.N; i++ {
				rows, w := run(b, dop)
				work, nrows = w, len(rows)
			}
			b.ReportMetric(work, "work_units")
			b.ReportMetric(float64(nrows), "rows")
		})
	}
}

// BenchmarkSelectivityEstimation measures predicate selectivity estimation
// against histograms and MCVs.
func BenchmarkSelectivityEstimation(b *testing.B) {
	vals := make([]types.Datum, 100000)
	for i := range vals {
		vals[i] = types.NewInt(int64(i % 1000))
	}
	cs := stats.BuildColumnStats(vals, stats.DefaultBucketCount)
	lk := func(int) *stats.ColumnStats { return cs }
	pred := &expr.Logic{Op: expr.And, Args: []expr.Expr{
		&expr.Cmp{Op: expr.LT, L: &expr.ColRef{Pos: 0}, R: &expr.Const{Val: types.NewInt(500)}},
		&expr.Cmp{Op: expr.EQ, L: &expr.ColRef{Pos: 1}, R: &expr.Const{Val: types.NewInt(3)}},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Selectivity(pred, lk)
	}
}
