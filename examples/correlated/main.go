// Correlated demonstrates the paper's §6 DMV case study on the synthetic
// correlated database: restrictions over correlated columns (MAKE, MODEL,
// COLOR) make the optimizer under-estimate cardinalities by orders of
// magnitude and choose plans whose actual cost explodes; POP detects and
// repairs them mid-flight.
//
//	go run ./examples/correlated
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/catalog"
	"repro/internal/dmv"
	"repro/internal/harness"
	"repro/internal/pop"
)

func main() {
	cat := catalog.New()
	if err := dmv.Load(cat, dmv.Config{Scale: 0.3, Seed: 17}); err != nil {
		log.Fatal(err)
	}
	qs, err := dmv.Queries(cat)
	if err != nil {
		log.Fatal(err)
	}

	// Deep-dive on one query with a triple correlation.
	qi := qs[1] // make+model+color combo
	fmt.Printf("query %s: %s\n%s\n\n", qi.Name, qi.Desc, qi.Query)
	static, err := pop.NewRunner(cat, pop.Options{Enabled: false}).Run(qi.Query, nil)
	if err != nil {
		log.Fatal(err)
	}
	progressive, err := pop.NewRunner(cat, pop.DefaultOptions()).Run(qi.Query, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static plan:\n%s", static.Attempts[0].Explain)
	fmt.Printf("static work: %.0f units\n\n", static.Work)
	for i, a := range progressive.Attempts {
		fmt.Printf("POP attempt %d:\n%s", i, a.Explain)
		if a.Violation != nil {
			fmt.Printf("  ↳ %v (MVs kept: %d)\n", a.Violation, a.MVsCreated)
		}
	}
	fmt.Printf("POP work: %.0f units — %.1fx %s\n\n",
		progressive.Work, factor(static.Work, progressive.Work), direction(static.Work, progressive.Work))

	// Then the first dozen workload queries, paper-Figure-16 style.
	results, err := harness.DMVStudy(cat, qs[:12])
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Factor > results[j].Factor })
	fmt.Println("speedup(+)/regression(−) over the first 12 workload queries:")
	for _, r := range results {
		fmt.Printf("  %-7s %+7.2fx  (%s)\n", r.Name, r.Factor, r.Desc)
	}
	s := harness.Summarize(results)
	fmt.Printf("improved=%d regressed=%d neutral=%d, max speedup %.1fx\n",
		s.Improved, s.Regressed, s.Neutral, s.MaxSpeedup)
}

func factor(a, b float64) float64 {
	if a >= b {
		return a / b
	}
	return b / a
}

func direction(static, progressive float64) string {
	if static >= progressive {
		return "faster with POP"
	}
	return "slower with POP (regression)"
}
