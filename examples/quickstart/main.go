// Quickstart: build a small database, run a SQL query with progressive
// optimization enabled, and watch a checkpoint fire and re-optimize the plan
// mid-execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/pop"
	"repro/internal/schema"
	"repro/internal/sqlparse"
	"repro/internal/types"
)

func main() {
	// 1. Create a catalog with two tables. The "events" table has three
	//    perfectly correlated kind columns: the optimizer's independence
	//    assumption under-estimates a conjunction over them by ~1600x,
	//    which lures it into a repeated-scan nested-loop join.
	cat := catalog.New()
	users, err := cat.CreateTable("users", schema.New(
		schema.Column{Name: "u_id", Type: types.KindInt},
		schema.Column{Name: "u_name", Type: types.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8000; i++ {
		users.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("user%05d", i)),
		})
	}
	events, err := cat.CreateTable("events", schema.New(
		schema.Column{Name: "e_id", Type: types.KindInt},
		schema.Column{Name: "e_user", Type: types.KindInt},
		schema.Column{Name: "e_kind", Type: types.KindInt},
		schema.Column{Name: "e_kind2", Type: types.KindInt}, // == e_kind
		schema.Column{Name: "e_kind3", Type: types.KindInt}, // == e_kind
	))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		kind := int64(i % 40)
		events.Heap.MustInsert(schema.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 8000)),
			types.NewInt(kind),
			types.NewInt(kind),
			types.NewInt(kind),
		})
	}
	if err := cat.AnalyzeAll(); err != nil {
		log.Fatal(err)
	}

	// 2. Parse a query whose WHERE clause hits the correlation.
	q, err := sqlparse.Parse(cat, `
		SELECT u.u_name, COUNT(*) AS n
		FROM events e, users u
		WHERE e.e_user = u.u_id AND e.e_kind = 3 AND e.e_kind2 = 3 AND e.e_kind3 = 3
		GROUP BY u.u_name
		ORDER BY u.u_name LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run it twice: once statically, once with POP.
	static, err := pop.NewRunner(cat, pop.Options{Enabled: false}).Run(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	progressive, err := pop.NewRunner(cat, pop.DefaultOptions()).Run(q, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== static optimization ==")
	fmt.Printf("work: %.0f units, plan:\n%s\n", static.Work, static.Attempts[0].Explain)
	fmt.Println("== progressive optimization ==")
	for i, a := range progressive.Attempts {
		fmt.Printf("-- attempt %d (%d checkpoints):\n%s", i, a.Checks, a.Explain)
		if a.Violation != nil {
			fmt.Printf("   ↳ %v\n", a.Violation)
		}
	}
	fmt.Printf("work: %.0f units, re-optimizations: %d\n\n", progressive.Work, progressive.Reopts)
	fmt.Printf("first rows (both runs return identical results):\n")
	for _, row := range progressive.Rows {
		fmt.Println(" ", row)
	}
	fmt.Printf("\nspeedup from POP: %.2fx\n", static.Work/progressive.Work)
}
