// Parammarker reproduces the scenario of the paper's Figure 11 end to end:
// TPC-H Q10 with a parameter marker on the LINEITEM predicate. The optimizer
// must guess a default selectivity at compile time; when the bound value
// turns out unselective, the static plan is disastrous and POP recovers.
//
//	go run ./examples/parammarker
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/pop"
	"repro/internal/tpch"
	"repro/internal/types"
)

func main() {
	cat := catalog.New()
	if err := tpch.Load(cat, tpch.Config{ScaleFactor: 0.003, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	q, err := tpch.Q10Param(cat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q10 with parameter marker:", q)
	fmt.Println()

	// l_quantity is uniform on [1,50]: binding qty selects ~qty/50 of
	// LINEITEM. Sweep a selective and an unselective binding.
	for _, qty := range []float64{2, 50} {
		params := []types.Datum{types.NewFloat(qty)}
		static, err := pop.NewRunner(cat, pop.Options{Enabled: false}).Run(q, params)
		if err != nil {
			log.Fatal(err)
		}
		progressive, err := pop.NewRunner(cat, pop.DefaultOptions()).Run(q, params)
		if err != nil {
			log.Fatal(err)
		}
		// The reference: compile with the literal, so the estimate is right.
		lit, err := tpch.Q10Literal(cat, qty)
		if err != nil {
			log.Fatal(err)
		}
		optimal, err := pop.NewRunner(cat, pop.Options{Enabled: false}).Run(lit, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("?0 = %.0f (actual selectivity %.0f%%):\n", qty, qty/50*100)
		fmt.Printf("  static default plan : %10.0f work units\n", static.Work)
		fmt.Printf("  POP                 : %10.0f work units (%d re-optimizations)\n",
			progressive.Work, progressive.Reopts)
		fmt.Printf("  optimal (literal)   : %10.0f work units\n", optimal.Work)
		fmt.Printf("  POP vs static       : %10.2fx\n", static.Work/progressive.Work)
		fmt.Printf("  POP vs optimal      : %10.2fx\n\n", progressive.Work/optimal.Work)
	}
}
